"""Hot-path performance harness: vectorized similarity paths vs linear scan.

The serving hot paths — semantic-cache probes, admission checks, few-shot
selection — were originally per-entry Python loops calling
:func:`repro._util.cosine`. They are now one matrix reduction each, backed
by :mod:`repro.vectordb`. This module keeps the original linear-scan
implementations frozen as references and provides two entry points:

* :func:`run_equivalence` — replays identical randomized workloads through
  the reference and the vectorized implementations and demands
  **bit-identical** results: lookup tiers, similarities, matched keys,
  stats, eviction order, admission decisions, selection order.
* :func:`run_hotpaths` — times both sides at several cache sizes and
  writes ``BENCH_hotpaths.json`` so successive PRs accumulate a perf
  trajectory.

The references deliberately reuse the (unchanged) ``CacheEntry`` /
``CacheStats`` machinery and the same refresh semantics as the current
cache, so the comparison isolates exactly one variable: the scan strategy.

This module also hosts the *serving* benchmark for the concurrent stack:

* :func:`run_serving` — drives a full middleware stack through the
  micro-batching scheduler at several worker/batch configurations, with a
  :class:`SimulatedServiceProvider` charging realistic per-call wall-clock,
  and writes ``BENCH_serving.json`` (QPS + p50/p95/p99 per config).
* :func:`run_parallel_equivalence` — re-runs Table I/III with
  ``parallel=True`` at several submitter counts and demands byte-identical
  rendered output versus the serial run.

And the *chaos* benchmark for the resilience layer:

* :func:`run_chaos` — injects transient faults at several rates via
  :class:`~repro.llm.faults.FaultInjectingProvider` and compares the
  unprotected stack against one wrapped in
  :class:`~repro.serving.resilience.ResilienceMiddleware`: availability,
  simulated latency percentiles, recovery counters. At rate 0 it also
  replays a workload through the *full* stack (cache + cascade + budget +
  resilience over an armed-but-silent fault injector) and demands
  bit-identical completions versus the stack without the failure model —
  resilience must be free when nothing fails. Writes ``BENCH_chaos.json``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import cosine, rng_from
from repro.bench.reporting import format_table
from repro.core.cache import (
    AdmissionPredictor,
    CacheEntry,
    CacheLookup,
    CacheStats,
    EvictionPolicy,
    SemanticCache,
)
from repro.core.prompts.selector import mmr_select, similarity_select
from repro.errors import LLMError
from repro.llm.client import Completion, LLMClient
from repro.llm.embeddings import EmbeddingModel
from repro.llm.faults import FaultInjectingProvider
from repro.serving import ConcurrentStack, ResilienceConfig, build_stack

DEFAULT_REPORT_PATH = "BENCH_hotpaths.json"
SCHEMA = "repro.bench.hotpaths/v1"
DEFAULT_SERVING_REPORT_PATH = "BENCH_serving.json"
SERVING_SCHEMA = "repro.bench.serving/v1"
DEFAULT_CHAOS_REPORT_PATH = "BENCH_chaos.json"
CHAOS_SCHEMA = "repro.bench.chaos/v1"


# ===========================================================================
# Frozen references: the pre-vectorization linear scans
# ===========================================================================


class LinearScanCache:
    """The seed ``SemanticCache``: an O(n) Python loop per probe.

    Kept verbatim (plus the put-refresh fix shared with the live cache) as
    the equivalence and benchmark baseline."""

    def __init__(
        self,
        capacity: int = 256,
        reuse_threshold: float = 0.95,
        augment_threshold: float = 0.75,
        policy: EvictionPolicy = EvictionPolicy.WEIGHTED,
        embedding_dim: int = 64,
        lrfu_lambda: float = 0.1,
    ) -> None:
        self.capacity = capacity
        self.reuse_threshold = reuse_threshold
        self.augment_threshold = augment_threshold
        self.policy = policy
        self.lrfu_lambda = lrfu_lambda
        self.embedder = EmbeddingModel(dim=embedding_dim)
        self.entries: Dict[str, CacheEntry] = {}
        self.stats = CacheStats()
        self._clock = 0

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, query: str) -> CacheLookup:
        self._clock += 1
        self.stats.lookups += 1
        if not self.entries:
            self.stats.misses += 1
            return CacheLookup(tier="miss")
        query_vec = self.embedder.embed(query)
        exact = self.entries.get(query)
        if exact is not None:
            # Exact requery returns its own entry: distinct texts can share
            # one embedding (same feature multiset), and a similarity scan
            # would tie-break to whichever was inserted first.
            best_entry, best_sim = exact, 1.0
        else:
            best_entry = None
            best_sim = -1.0
            for entry in self.entries.values():
                sim = cosine(query_vec, entry.embedding)
                if sim > best_sim:
                    best_sim, best_entry = sim, entry
            assert best_entry is not None
        if best_sim >= self.reuse_threshold:
            best_entry.reuse_hits += 1
            best_entry.last_access = self._clock
            best_entry.touch_lrfu(self._clock, self.lrfu_lambda)
            self.stats.reuse_hits += 1
            self.stats.cost_saved += best_entry.cost_of_miss
            return CacheLookup(tier="reuse", entry=best_entry, similarity=best_sim)
        if best_sim >= self.augment_threshold:
            best_entry.augment_hits += 1
            best_entry.last_access = self._clock
            best_entry.touch_lrfu(self._clock, self.lrfu_lambda)
            self.stats.augment_hits += 1
            return CacheLookup(tier="augment", entry=best_entry, similarity=best_sim)
        self.stats.misses += 1
        return CacheLookup(tier="miss")

    def put(
        self, query: str, response: str, kind: str = "original", cost: float = 0.0
    ) -> Optional[CacheEntry]:
        self._clock += 1
        if query in self.entries:
            entry = self.entries[query]
            entry.response = response
            entry.cost_of_miss = cost
            entry.last_access = self._clock
            entry.touch_lrfu(self._clock, self.lrfu_lambda)
            return entry
        while len(self.entries) >= self.capacity:
            self._evict()
        entry = CacheEntry(
            key=query,
            embedding=self.embedder.embed(query),
            response=response,
            kind=kind,
            cost_of_miss=cost,
            last_access=self._clock,
            inserted_at=self._clock,
        )
        entry.touch_lrfu(self._clock, self.lrfu_lambda)
        self.entries[query] = entry
        return entry

    def _evict(self) -> None:
        if not self.entries:
            return
        if self.policy is EvictionPolicy.LRU:
            victim = min(self.entries.values(), key=lambda e: (e.last_access, e.key))
        elif self.policy is EvictionPolicy.LFU:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.reuse_hits + e.augment_hits, e.last_access, e.key),
            )
        elif self.policy is EvictionPolicy.LRFU:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.lrfu_score(self._clock, self.lrfu_lambda), e.key),
            )
        else:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.weighted_score(self._clock), e.key),
            )
        del self.entries[victim.key]
        self.stats.evictions += 1


class LinearScanAdmission:
    """The seed ``AdmissionPredictor``: list-of-vectors history scan."""

    def __init__(
        self,
        history: int = 256,
        similarity_threshold: float = 0.92,
        admit_subqueries: bool = True,
        embedding_dim: int = 64,
    ) -> None:
        self.history = history
        self.similarity_threshold = similarity_threshold
        self.admit_subqueries = admit_subqueries
        self.embedder = EmbeddingModel(dim=embedding_dim)
        self._seen: List[np.ndarray] = []

    def observe(self, query: str) -> None:
        self._seen.append(self.embedder.embed(query))
        if len(self._seen) > self.history:
            del self._seen[0]

    def seen_similar(self, query: str) -> bool:
        vec = self.embedder.embed(query)
        return any(cosine(vec, other) >= self.similarity_threshold for other in self._seen)

    def should_admit(self, query: str, kind: str = "original") -> bool:
        if self.admit_subqueries and kind == "sub":
            self.observe(query)
            return True
        admit = self.seen_similar(query)
        self.observe(query)
        return admit


def linear_similarity_select(
    query: str,
    candidates: Sequence[str],
    k: int,
    embedder: Optional[EmbeddingModel] = None,
) -> List[str]:
    """The seed per-candidate-loop ``similarity_select``."""
    if k <= 0 or not candidates:
        return []
    embedder = embedder or EmbeddingModel()
    query_vec = embedder.embed(query)
    scored = [
        (cosine(query_vec, embedder.embed(c)), i, c) for i, c in enumerate(candidates)
    ]
    scored.sort(key=lambda t: (-t[0], t[1]))
    return [c for _s, _i, c in scored[:k]]


def linear_mmr_select(
    query: str,
    candidates: Sequence[str],
    k: int,
    lambda_relevance: float = 0.7,
    embedder: Optional[EmbeddingModel] = None,
) -> List[str]:
    """The seed per-pair-loop ``mmr_select``."""
    if k <= 0 or not candidates:
        return []
    embedder = embedder or EmbeddingModel()
    query_vec = embedder.embed(query)
    vectors = [embedder.embed(c) for c in candidates]
    relevance = [cosine(query_vec, v) for v in vectors]

    selected: List[int] = []
    remaining = list(range(len(candidates)))
    while remaining and len(selected) < k:

        def mmr_score(idx: int) -> float:
            redundancy = max(
                (cosine(vectors[idx], vectors[j]) for j in selected), default=0.0
            )
            return lambda_relevance * relevance[idx] - (1 - lambda_relevance) * redundancy

        best = max(remaining, key=lambda idx: (mmr_score(idx), -idx))
        selected.append(best)
        remaining.remove(best)
    return [candidates[i] for i in selected]


# ===========================================================================
# Workloads
# ===========================================================================

_VOCAB = (
    "stadium concert film director privacy cache query patient table column "
    "vector index model data lake schema entity match join federated budget "
    "transaction ledger revenue forecast cluster shard replica batch stream"
).split()


def make_queries(n: int, seed: int = 11) -> List[str]:
    """``n`` distinct synthetic queries over a small vocabulary."""
    rng = rng_from(seed)
    queries: List[str] = []
    seen = set()
    i = 0
    while len(queries) < n:
        words = rng.choice(_VOCAB, size=int(rng.integers(3, 8)))
        text = " ".join(words) + f" #{i}"
        i += 1
        if text not in seen:
            seen.add(text)
            queries.append(text)
    return queries


def make_stream(queries: Sequence[str], length: int, seed: int = 13) -> List[str]:
    """A lookup stream with skewed repetition over ``queries``."""
    rng = rng_from(seed)
    n = len(queries)
    # Zipf-ish skew: squaring a uniform concentrates mass on low indexes.
    picks = (rng.random(length) ** 2 * n).astype(int)
    return [queries[min(int(p), n - 1)] for p in picks]


def make_probe_stream(queries: Sequence[str], length: int, seed: int = 13) -> List[str]:
    """A lookup stream of *near-duplicate* probes: reworded repeats that are
    semantically close to a stored query without being the exact string.

    Exact requery short-circuits to a dict hit (no similarity scan), so
    timing the scan path — the thing the semantic cache exists for — needs
    probes that rephrase rather than repeat."""
    rng = rng_from(seed)
    n = len(queries)
    picks = (rng.random(length) ** 2 * n).astype(int)
    return [queries[min(int(p), n - 1)] + " please" for p in picks]


# ===========================================================================
# Equivalence
# ===========================================================================


def _lookup_sig(lookup: CacheLookup) -> Tuple[str, float, Optional[str]]:
    return (
        lookup.tier,
        lookup.similarity,
        lookup.entry.key if lookup.entry is not None else None,
    )


def run_equivalence(
    n_queries: int = 150,
    n_ops: int = 500,
    capacity: int = 48,
    seed: int = 11,
    policies: Sequence[EvictionPolicy] = tuple(EvictionPolicy),
) -> Dict[str, object]:
    """Replay one workload through both cache implementations and compare.

    Returns a report with a ``diverged`` count per policy; any non-zero
    value means the vectorized cache is NOT a drop-in replacement."""
    queries = make_queries(n_queries, seed=seed)
    stream = make_stream(queries, n_ops, seed=seed + 1)
    # Interleave rephrased near-duplicates: exact repeats short-circuit to
    # a dict hit, so without these the similarity scan (and its tie-break
    # rules) would barely be exercised.
    stream = [q if i % 2 else q + " please" for i, q in enumerate(stream)]
    report: Dict[str, object] = {"ops_per_policy": n_ops, "policies": {}}
    total_diverged = 0
    for policy in policies:
        reference = LinearScanCache(
            capacity=capacity, policy=policy, reuse_threshold=0.9, augment_threshold=0.7
        )
        vectorized = SemanticCache(
            capacity=capacity, policy=policy, reuse_threshold=0.9, augment_threshold=0.7
        )
        diverged = 0
        for query in stream:
            ref_lookup = reference.lookup(query)
            vec_lookup = vectorized.lookup(query)
            if _lookup_sig(ref_lookup) != _lookup_sig(vec_lookup):
                diverged += 1
            if ref_lookup.tier != "reuse":
                reference.put(query, "answer", cost=0.01)
            if vec_lookup.tier != "reuse":
                vectorized.put(query, "answer", cost=0.01)
            if list(reference.entries) != list(vectorized.entries):
                diverged += 1
        if reference.stats != vectorized.stats:
            diverged += 1
        total_diverged += diverged
        report["policies"][policy.value] = {
            "diverged": diverged,
            "reuse_hits": vectorized.stats.reuse_hits,
            "augment_hits": vectorized.stats.augment_hits,
            "misses": vectorized.stats.misses,
            "evictions": vectorized.stats.evictions,
        }

    # Admission decisions.
    reference_admission = LinearScanAdmission(history=64, similarity_threshold=0.9)
    vector_admission = AdmissionPredictor(history=64, similarity_threshold=0.9)
    admission_diverged = sum(
        1
        for query in stream
        if reference_admission.should_admit(query) != vector_admission.should_admit(query)
    )
    total_diverged += admission_diverged
    report["admission"] = {"ops": len(stream), "diverged": admission_diverged}

    # Selection order.
    pool = queries
    shared = EmbeddingModel(memo_size=2 * len(pool) + 16)
    sel_diverged = 0
    for probe in stream[:20]:
        if linear_similarity_select(probe, pool, 8, embedder=shared) != similarity_select(
            probe, pool, 8, text_of=lambda s: s, embedder=shared
        ):
            sel_diverged += 1
        if linear_mmr_select(probe, pool, 8, embedder=shared) != mmr_select(
            probe, pool, 8, text_of=lambda s: s, embedder=shared
        ):
            sel_diverged += 1
    total_diverged += sel_diverged
    report["selection"] = {"ops": 40, "diverged": sel_diverged}

    # Batched lookups (scheduler flush path): a cache probed per-chunk via
    # batch_probe must make decision-for-decision the same calls as one
    # looked up serially.
    batched_diverged = _batched_equivalence(stream)
    total_diverged += batched_diverged
    report["batched"] = {"ops": len(stream), "diverged": batched_diverged}

    # Cluster-pruned exact index vs flat scan, on a cache sized to train:
    # the pruning is supposed to be a proof, so zero divergence is the bar.
    ann_diverged = _ann_equivalence(seed=seed)
    total_diverged += ann_diverged
    report["ann"] = {"diverged": ann_diverged}

    report["diverged"] = total_diverged
    return report


def _batched_equivalence(stream: Sequence[str], chunk_size: int = 8) -> int:
    """Replay ``stream`` through a plain cache and a batch-probed cache."""
    serial = SemanticCache(capacity=48, reuse_threshold=0.9, augment_threshold=0.7)
    batched = SemanticCache(capacity=48, reuse_threshold=0.9, augment_threshold=0.7)
    diverged = 0
    for start in range(0, len(stream), chunk_size):
        chunk = stream[start : start + chunk_size]
        batched.batch_probe(chunk)
        try:
            for query in chunk:
                serial_lookup = serial.lookup(query)
                batched_lookup = batched.lookup(query)
                if _lookup_sig(serial_lookup) != _lookup_sig(batched_lookup):
                    diverged += 1
                if serial_lookup.tier != "reuse":
                    serial.put(query, "answer", cost=0.01)
                if batched_lookup.tier != "reuse":
                    batched.put(query, "answer", cost=0.01)
        finally:
            batched.end_probe()
        if list(serial.entries) != list(batched.entries):
            diverged += 1
    if serial.stats != batched.stats:
        diverged += 1
    return diverged


def _ann_equivalence(seed: int, n_queries: int = 400, n_ops: int = 900) -> int:
    """Replay one workload through a FlatIndex cache and an ExactIVFIndex
    cache (training threshold lowered so clustering actually engages) and
    count any divergence in lookups, contents, or stats."""
    from repro.vectordb import ExactIVFIndex, FlatIndex, Metric

    queries = make_queries(n_queries, seed=seed + 7)
    stream = make_stream(queries, n_ops, seed=seed + 8)
    stream = [q if i % 3 else q + " please" for i, q in enumerate(stream)]
    flat = SemanticCache(
        capacity=256,
        reuse_threshold=0.9,
        augment_threshold=0.7,
        index=FlatIndex(dim=64, metric=Metric.COSINE),
    )
    pruned = SemanticCache(
        capacity=256,
        reuse_threshold=0.9,
        augment_threshold=0.7,
        index=ExactIVFIndex(dim=64, metric=Metric.COSINE, train_threshold=128),
    )
    diverged = 0
    for query in stream:
        flat_lookup = flat.lookup(query)
        pruned_lookup = pruned.lookup(query)
        if _lookup_sig(flat_lookup) != _lookup_sig(pruned_lookup):
            diverged += 1
        if flat_lookup.tier != "reuse":
            flat.put(query, "answer", cost=0.01)
        if pruned_lookup.tier != "reuse":
            pruned.put(query, "answer", cost=0.01)
        if list(flat.entries) != list(pruned.entries):
            diverged += 1
    if flat.stats != pruned.stats:
        diverged += 1
    if pruned.index.pruned_searches == 0:
        # The comparison only means something if pruning actually ran.
        diverged += 1
    return diverged


# ===========================================================================
# Timing
# ===========================================================================


def _time_per_op(fn: Callable[[], object], min_ops: int, budget_s: float) -> Tuple[float, int]:
    """Mean milliseconds per call of ``fn`` — at least ``min_ops`` calls,
    stopping early once ``budget_s`` wall-clock is spent."""
    ops = 0
    start = time.perf_counter()
    while True:
        fn()
        ops += 1
        elapsed = time.perf_counter() - start
        if ops >= min_ops and elapsed >= budget_s:
            break
        if ops >= 10 * min_ops:
            break
    return (elapsed * 1000.0) / ops, ops


@dataclass
class HotpathReport:
    """Timings + equivalence for every similarity hot path."""

    sizes: List[int]
    ops: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    equivalence: Dict[str, object] = field(default_factory=dict)
    # Index-level flat vs cluster-pruned sweep at 100k-1M rows (full runs
    # only; empty in smoke mode).
    ann: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def diverged(self) -> int:
        total = int(self.equivalence.get("diverged", -1))
        if total >= 0:
            total += sum(int(cell.get("mismatches", 0)) for cell in self.ann.values())
        return total

    def speedup(self, op: str, size: int) -> float:
        return float(self.ops[op][str(size)]["speedup"])

    def payload(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "sizes": self.sizes,
            "ops": self.ops,
            "equivalence": self.equivalence,
            "ann": self.ann,
        }

    def write(self, path: str = DEFAULT_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def render(self) -> str:
        rows = []
        for op, by_size in self.ops.items():
            for size in sorted(by_size, key=int):
                cell = by_size[size]
                rows.append(
                    (
                        op,
                        int(size),
                        round(cell["linear_ms_per_op"], 4),
                        round(cell["vector_ms_per_op"], 4),
                        round(cell["speedup"], 1),
                    )
                )
        table = format_table(
            ["Hot path", "Size", "Linear ms/op", "Vector ms/op", "Speedup"],
            rows,
            title="Similarity hot paths: linear scan vs vectordb-backed",
        )
        if self.ann:
            ann_rows = [
                (
                    int(size),
                    round(cell["flat_ms_per_op"], 3),
                    round(cell["pruned_ms_per_op"], 3),
                    round(cell["speedup"], 1),
                    round(cell["scanned_fraction"], 4),
                    int(cell["mismatches"]),
                )
                for size, cell in sorted(self.ann.items(), key=lambda kv: int(kv[0]))
            ]
            table += "\n" + format_table(
                ["Rows", "Flat ms/op", "Pruned ms/op", "Speedup", "Scanned", "Mismatch"],
                ann_rows,
            )
        return table + f"\nEquivalence: diverged={self.diverged} (0 = drop-in)"


def run_index_sweep(
    sizes: Sequence[int] = (100_000, 300_000, 1_000_000),
    dim: int = 64,
    n_probes: int = 50,
    seed: int = 17,
) -> Dict[str, Dict[str, float]]:
    """FlatIndex vs ExactIVFIndex top-1 search at 100k-1M rows.

    Data is clustered (mixture of random unit centers plus noise) and the
    probes are near-duplicates of stored rows — the semantic-cache reuse
    workload the pruned index is built for. Every probe's (id, score) must
    match the flat scan exactly; ``mismatches`` counts any that don't.
    """
    from repro.vectordb import ExactIVFIndex, FlatIndex, Metric

    rng = rng_from(seed)
    sweep: Dict[str, Dict[str, float]] = {}
    for size in sizes:
        n_centers = max(32, size // 2000)
        centers = rng.standard_normal((n_centers, dim))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        assign = rng.integers(0, n_centers, size=size)
        vectors = centers[assign] + 0.10 * rng.standard_normal((size, dim))
        ids = [f"v{i}" for i in range(size)]

        flat = FlatIndex(dim=dim, metric=Metric.COSINE)
        flat.add_batch(ids, vectors)
        pruned = ExactIVFIndex(dim=dim, metric=Metric.COSINE)
        pruned.add_batch(ids, vectors)

        probe_rows = rng.integers(0, size, size=n_probes)
        probe_vecs = vectors[probe_rows] + 0.01 * rng.standard_normal((n_probes, dim))

        # Warm both (flush; train the pruned side) off the clock.
        flat.search_top1(probe_vecs[0], refine_exact=True)
        pruned.search_top1(probe_vecs[0], refine_exact=True)

        flat_hits = []
        start = time.perf_counter()
        for vec in probe_vecs:
            flat_hits.append(flat.search_top1(vec, refine_exact=True))
        flat_ms = (time.perf_counter() - start) * 1000.0 / n_probes

        pruned_hits = []
        scanned = 0
        start = time.perf_counter()
        for vec in probe_vecs:
            pruned_hits.append(pruned.search_top1(vec, refine_exact=True))
            scanned += pruned.last_scanned_rows
        pruned_ms = (time.perf_counter() - start) * 1000.0 / n_probes

        mismatches = sum(1 for a, b in zip(flat_hits, pruned_hits) if a != b)
        sweep[str(size)] = {
            "flat_ms_per_op": flat_ms,
            "pruned_ms_per_op": pruned_ms,
            "speedup": flat_ms / max(pruned_ms, 1e-9),
            "scanned_fraction": scanned / (n_probes * size),
            "mismatches": float(mismatches),
        }
    return sweep


def run_hotpaths(
    sizes: Sequence[int] = (1000, 10000, 50000),
    seed: int = 11,
    budget_s: float = 0.35,
    selection_k: int = 8,
    write_path: Optional[str] = None,
    ann_sizes: Sequence[int] = (),
) -> HotpathReport:
    """Time lookup/put/admission/selection at each size, both backends.

    Embeddings are pre-warmed into the shared memo before timing, so the
    measured work is the scan/scoring itself — the part this PR vectorizes.
    Pass ``write_path`` to persist the JSON perf trajectory, and
    ``ann_sizes`` (e.g. ``(100_000, 1_000_000)``) to include the
    index-level flat-vs-pruned sweep of :func:`run_index_sweep`.
    """
    report = HotpathReport(sizes=list(sizes))
    ops: Dict[str, Dict[str, Dict[str, float]]] = {
        "cache_lookup": {},
        "cache_put": {},
        "admission": {},
        "selection_topk": {},
        "selection_mmr": {},
    }
    for size in sizes:
        queries = make_queries(size, seed=seed)
        # Rephrased near-duplicates: exact repeats short-circuit to a dict
        # hit on both sides, so they no longer time the similarity scan.
        probes = make_probe_stream(queries, 256, seed=seed + 2)

        # --- cache put + lookup ------------------------------------------
        # Warm each backend's embedding memo once, then reuse it across
        # put passes: a pass times the put path itself, not feature
        # hashing (which both backends share unchanged).
        embedders = []
        for _ in range(2):
            embedder = EmbeddingModel(memo_size=2 * size + 512)
            embedder.embed_batch(queries)
            embedder.embed_batch(probes)
            embedders.append(embedder)

        # Per-op put cost is a couple of microseconds, so a single pass is
        # at the mercy of scheduler preemption; take the best of a few
        # fresh-cache passes per side (the classic timeit estimator),
        # symmetrically for both backends.
        linear_put_ms = vector_put_ms = float("inf")
        reference = vectorized = None
        for _trial in range(3):
            reference = LinearScanCache(
                capacity=size, reuse_threshold=0.9, augment_threshold=0.7
            )
            reference.embedder = embedders[0]
            vectorized = SemanticCache(
                capacity=size, reuse_threshold=0.9, augment_threshold=0.7
            )
            vectorized.embedder = embedders[1]
            put_iter = iter(queries)
            ms, _ = _time_per_op(
                lambda: reference.put(next(put_iter), "answer", cost=0.01), size, 0.0
            )
            linear_put_ms = min(linear_put_ms, ms)
            put_iter = iter(queries)
            ms, _ = _time_per_op(
                lambda: vectorized.put(next(put_iter), "answer", cost=0.01), size, 0.0
            )
            vector_put_ms = min(vector_put_ms, ms)
        ops["cache_put"][str(size)] = {
            "linear_ms_per_op": linear_put_ms,
            "vector_ms_per_op": vector_put_ms,
            "speedup": linear_put_ms / max(vector_put_ms, 1e-9),
        }

        # One warm probe each, off the clock: it flushes the write-behind
        # insert buffer and (above the auto-index threshold) trains the
        # cluster-pruned index — one-time costs the per-op numbers would
        # otherwise smear over the first timed ops.
        reference.lookup(probes[0])
        vectorized.lookup(probes[0])
        probe_cycle = _cycler(probes)
        linear_lookup_ms, _ = _time_per_op(
            lambda: reference.lookup(next(probe_cycle)), 3, budget_s
        )
        probe_cycle = _cycler(probes)
        vector_lookup_ms, _ = _time_per_op(
            lambda: vectorized.lookup(next(probe_cycle)), 50, budget_s
        )
        ops["cache_lookup"][str(size)] = {
            "linear_ms_per_op": linear_lookup_ms,
            "vector_ms_per_op": vector_lookup_ms,
            "speedup": linear_lookup_ms / max(vector_lookup_ms, 1e-9),
        }

        # --- admission ----------------------------------------------------
        history = min(size, 8192)
        reference_admission = LinearScanAdmission(history=history, similarity_threshold=0.9)
        vector_admission = AdmissionPredictor(history=history, similarity_threshold=0.9)
        for predictor in (reference_admission, vector_admission):
            predictor.embedder = EmbeddingModel(memo_size=2 * size + 512)
            predictor.embedder.embed_batch(queries)
            for query in queries[:history]:
                predictor.observe(query)
        probe_cycle = _cycler(probes)
        linear_adm_ms, _ = _time_per_op(
            lambda: reference_admission.seen_similar(next(probe_cycle)), 3, budget_s
        )
        probe_cycle = _cycler(probes)
        vector_adm_ms, _ = _time_per_op(
            lambda: vector_admission.seen_similar(next(probe_cycle)), 50, budget_s
        )
        ops["admission"][str(size)] = {
            "linear_ms_per_op": linear_adm_ms,
            "vector_ms_per_op": vector_adm_ms,
            "speedup": linear_adm_ms / max(vector_adm_ms, 1e-9),
        }

        # --- selection ----------------------------------------------------
        shared = EmbeddingModel(memo_size=2 * size + 512)
        shared.embed_batch(queries)
        probe = probes[0]
        shared.embed(probe)
        linear_topk_ms, _ = _time_per_op(
            lambda: linear_similarity_select(probe, queries, selection_k, embedder=shared),
            1,
            budget_s,
        )
        vector_topk_ms, _ = _time_per_op(
            lambda: similarity_select(
                probe, queries, selection_k, text_of=lambda s: s, embedder=shared
            ),
            3,
            budget_s,
        )
        ops["selection_topk"][str(size)] = {
            "linear_ms_per_op": linear_topk_ms,
            "vector_ms_per_op": vector_topk_ms,
            "speedup": linear_topk_ms / max(vector_topk_ms, 1e-9),
        }
        linear_mmr_ms, _ = _time_per_op(
            lambda: linear_mmr_select(probe, queries, selection_k, embedder=shared),
            1,
            budget_s,
        )
        vector_mmr_ms, _ = _time_per_op(
            lambda: mmr_select(probe, queries, selection_k, text_of=lambda s: s, embedder=shared),
            3,
            budget_s,
        )
        ops["selection_mmr"][str(size)] = {
            "linear_ms_per_op": linear_mmr_ms,
            "vector_ms_per_op": vector_mmr_ms,
            "speedup": linear_mmr_ms / max(vector_mmr_ms, 1e-9),
        }

    report.ops = ops
    report.equivalence = run_equivalence(seed=seed)
    if ann_sizes:
        report.ann = run_index_sweep(sizes=ann_sizes, seed=seed + 6)
    if write_path is not None:
        report.write(write_path)
    return report


def _cycler(items: Sequence[str]):
    def gen():
        while True:
            for item in items:
                yield item

    return gen()


# ===========================================================================
# Concurrent serving throughput
# ===========================================================================

SERVING_PREAMBLE = (
    "You are a data management assistant. Answer with a single short "
    "phrase and no explanation.\nQuestion: "
)


class SimulatedServiceProvider:
    """Provider wrapper that charges realistic wall-clock per service call.

    The simulated :class:`~repro.llm.client.LLMClient` answers in
    microseconds, which would make any throughput benchmark measure Python
    overhead instead of serving structure. This wrapper sleeps
    ``overhead_ms + per_item_ms * n`` per call — ``time.sleep`` releases
    the GIL, so overlapping calls from several dispatcher threads overlap
    for real — while delegating the actual completion to the inner client.
    ``complete_batch`` pays the fixed overhead *once* for the whole batch,
    which is exactly the amortization micro-batching exists to buy.
    """

    def __init__(
        self,
        inner: "LLMClient",
        overhead_ms: float = 8.0,
        per_item_ms: float = 0.5,
    ) -> None:
        self.inner = inner
        self.overhead_ms = overhead_ms
        self.per_item_ms = per_item_ms

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        time.sleep((self.overhead_ms + self.per_item_ms) / 1000.0)
        return self.inner.complete(prompt, model=model)

    def complete_batch(
        self, shared_prefix: str, items: List[str], model: Optional[str] = None
    ) -> List[Completion]:
        time.sleep((self.overhead_ms + self.per_item_ms * len(items)) / 1000.0)
        return self.inner.complete_batch(shared_prefix, items, model=model)

    def embed(self, text: str):
        return self.inner.embed(text)

    def reseeded(self, offset: int) -> "SimulatedServiceProvider":
        return SimulatedServiceProvider(
            self.inner.reseeded(offset),
            overhead_ms=self.overhead_ms,
            per_item_ms=self.per_item_ms,
        )


def _exact_percentile(sorted_ms: Sequence[float], p: float) -> float:
    """Exact percentile (nearest-rank) of an ascending latency list."""
    if not sorted_ms:
        return 0.0
    rank = max(1, -(-int(p * len(sorted_ms)) // 100))
    return sorted_ms[min(rank, len(sorted_ms)) - 1]


def _latency_summary(latencies_ms: List[float], elapsed_s: float) -> Dict[str, float]:
    ordered = sorted(latencies_ms)
    return {
        "requests": len(ordered),
        "elapsed_s": round(elapsed_s, 4),
        "qps": round(len(ordered) / max(elapsed_s, 1e-9), 2),
        "p50_ms": round(_exact_percentile(ordered, 50), 3),
        "p95_ms": round(_exact_percentile(ordered, 95), 3),
        "p99_ms": round(_exact_percentile(ordered, 99), 3),
        "mean_ms": round(sum(ordered) / max(len(ordered), 1), 3),
    }


@dataclass
class ServingReport:
    """Throughput/latency of the concurrent stack vs the serial loop."""

    n_requests: int
    overhead_ms: float
    per_item_ms: float
    baseline: Dict[str, float] = field(default_factory=dict)
    configs: Dict[str, Dict[str, float]] = field(default_factory=dict)
    equivalence: Dict[str, object] = field(default_factory=dict)

    def speedup(self, name: str) -> float:
        return float(self.configs[name]["qps"]) / max(float(self.baseline["qps"]), 1e-9)

    @property
    def best_speedup(self) -> float:
        return max((self.speedup(name) for name in self.configs), default=0.0)

    @property
    def diverged(self) -> int:
        return int(self.equivalence.get("diverged", -1))

    def payload(self) -> Dict[str, object]:
        return {
            "schema": SERVING_SCHEMA,
            "n_requests": self.n_requests,
            "overhead_ms": self.overhead_ms,
            "per_item_ms": self.per_item_ms,
            "baseline": self.baseline,
            "configs": self.configs,
            "equivalence": self.equivalence,
            "best_speedup": round(self.best_speedup, 2),
        }

    def write(self, path: str = DEFAULT_SERVING_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def render(self) -> str:
        rows = [
            (
                "serial",
                self.baseline["qps"],
                self.baseline["p50_ms"],
                self.baseline["p95_ms"],
                self.baseline["p99_ms"],
                "-",
                1.0,
            )
        ]
        for name, cell in self.configs.items():
            rows.append(
                (
                    name,
                    cell["qps"],
                    cell["p50_ms"],
                    cell["p95_ms"],
                    cell["p99_ms"],
                    cell["mean_batch_size"],
                    round(self.speedup(name), 2),
                )
            )
        table = format_table(
            ["Config", "QPS", "p50 ms", "p95 ms", "p99 ms", "Mean batch", "Speedup"],
            rows,
            title=(
                f"Concurrent serving ({self.n_requests} requests, "
                f"{self.overhead_ms}ms service overhead)"
            ),
        )
        return table + (
            f"\nParallel-table equivalence: diverged={self.diverged} (0 = bit-identical)"
        )


def _serving_stack(overhead_ms: float, per_item_ms: float):
    provider = SimulatedServiceProvider(
        LLMClient(), overhead_ms=overhead_ms, per_item_ms=per_item_ms
    )
    return build_stack(
        provider,
        cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75, capacity=4096),
    )


def _drive_serial(stack, prompts: Sequence[str]) -> Tuple[List[float], float]:
    latencies: List[float] = []
    start = time.perf_counter()
    for prompt in prompts:
        t0 = time.perf_counter()
        stack.complete(prompt)
        latencies.append((time.perf_counter() - t0) * 1000.0)
    return latencies, time.perf_counter() - start


def _drive_concurrent(
    stack,
    prompts: Sequence[str],
    *,
    workers: int,
    batch: int,
    combine: bool,
    submitters: int,
    max_wait_ms: float,
) -> Tuple[List[float], float, float]:
    """Feed all prompts from ``submitters`` threads; returns per-request
    wall-clock latencies, total elapsed seconds, and the mean batch size."""
    latencies = [0.0] * len(prompts)
    served = ConcurrentStack(
        stack,
        max_batch_size=batch,
        max_wait_ms=max_wait_ms,
        workers=workers,
        combine=combine,
    )
    start = time.perf_counter()
    base = served.scheduler.reserve(len(prompts))

    def feed(offset: int) -> None:
        for i in range(offset, len(prompts), submitters):
            t0 = time.perf_counter()
            future = served.scheduler.submit(prompts[i], index=base + i)

            def on_done(_future, i=i, t0=t0):
                latencies[i] = (time.perf_counter() - t0) * 1000.0

            future.add_done_callback(on_done)

    threads = [
        threading.Thread(target=feed, args=(offset,), daemon=True)
        for offset in range(max(1, min(submitters, len(prompts))))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    served.close()  # drains the queue and joins the scheduler threads
    elapsed = time.perf_counter() - start
    return latencies, elapsed, served.stats.mean_batch_size


def run_serving(
    n_requests: int = 200,
    n_queries: int = 48,
    seed: int = 11,
    overhead_ms: float = 8.0,
    per_item_ms: float = 0.5,
    worker_counts: Sequence[int] = (1, 2, 8),
    batch_sizes: Sequence[int] = (1, 8),
    submitters: int = 8,
    max_wait_ms: float = 2.0,
    check_equivalence: bool = True,
    write_path: Optional[str] = None,
) -> ServingReport:
    """Benchmark the batching scheduler against the serial serving loop.

    One skewed prompt stream (shared preamble + repeated questions, so both
    the semantic cache and shared-prefix batching have something to bite
    on) is served by a fresh cache-fronted stack per configuration:

    * the **serial baseline** completes requests one at a time;
    * each ``(workers, batch)`` configuration drives the same stream
      through :class:`~repro.serving.ConcurrentStack` from ``submitters``
      client threads, with ``combine=True`` whenever ``batch > 1`` so
      multi-request batches go through ``complete_batch``.

    Latencies are wall-clock from submit to future resolution; QPS is
    requests over total elapsed. With ``check_equivalence`` the report also
    embeds :func:`run_parallel_equivalence` so the JSON records that the
    throughput did not cost determinism.
    """
    queries = make_queries(n_queries, seed=seed)
    stream = make_stream(queries, n_requests, seed=seed + 1)
    prompts = [SERVING_PREAMBLE + query for query in stream]

    report = ServingReport(
        n_requests=n_requests, overhead_ms=overhead_ms, per_item_ms=per_item_ms
    )

    latencies, elapsed = _drive_serial(
        _serving_stack(overhead_ms, per_item_ms), prompts
    )
    report.baseline = _latency_summary(latencies, elapsed)

    for workers in worker_counts:
        for batch in batch_sizes:
            combine = batch > 1
            latencies, elapsed, mean_batch = _drive_concurrent(
                _serving_stack(overhead_ms, per_item_ms),
                prompts,
                workers=workers,
                batch=batch,
                combine=combine,
                submitters=submitters,
                max_wait_ms=max_wait_ms,
            )
            name = f"w{workers}_b{batch}" + ("_combined" if combine else "")
            cell = _latency_summary(latencies, elapsed)
            cell["workers"] = workers
            cell["batch"] = batch
            cell["combined"] = combine
            cell["mean_batch_size"] = round(mean_batch, 2)
            report.configs[name] = cell

    if check_equivalence:
        report.equivalence = run_parallel_equivalence()
    if write_path is not None:
        report.write(write_path)
    return report


def run_parallel_equivalence(
    worker_counts: Sequence[int] = (1, 2, 8),
    table1_queries: int = 8,
    table3_queries: int = 4,
) -> Dict[str, object]:
    """Demand byte-identical Table I/III output from parallel serving.

    Runs each table serially once, then with ``parallel=True`` at each
    submitter count; any rendered-output difference is a divergence. This
    is the determinism contract of the scheduler's single-worker mode, and
    CI fails on any non-zero count."""
    from repro.bench.experiments import run_table1, run_table3

    serial = {
        "table1": run_table1(n_queries=table1_queries).render(),
        "table3": run_table3(n_queries=table3_queries).render(),
    }
    divergent: List[str] = []
    for workers in worker_counts:
        if (
            run_table1(n_queries=table1_queries, parallel=True, workers=workers).render()
            != serial["table1"]
        ):
            divergent.append(f"table1@workers={workers}")
        if (
            run_table3(n_queries=table3_queries, parallel=True, workers=workers).render()
            != serial["table3"]
        ):
            divergent.append(f"table3@workers={workers}")
    return {
        "worker_counts": list(worker_counts),
        "divergent": divergent,
        "diverged": len(divergent),
    }


# ===========================================================================
# Chaos: fault injection vs the resilience layer
# ===========================================================================


@dataclass
class ChaosReport:
    """Availability and latency under injected faults, both stacks.

    ``cells`` maps ``rate_<pct>`` → ``{"baseline": {...}, "resilient":
    {...}}``; all latency numbers are *simulated* milliseconds (the sum the
    middleware accounts, including backoff), so the whole report is a
    deterministic function of the seed."""

    n_requests: int
    fault_rates: List[float]
    cells: Dict[str, Dict[str, Dict[str, object]]] = field(default_factory=dict)
    equivalence: Dict[str, object] = field(default_factory=dict)

    @staticmethod
    def cell_name(rate: float) -> str:
        return f"rate_{round(rate * 100):d}"

    def availability(self, rate: float, side: str) -> float:
        return float(self.cells[self.cell_name(rate)][side]["availability"])

    def failure_rate(self, rate: float, side: str) -> float:
        return 1.0 - self.availability(rate, side)

    @property
    def diverged(self) -> int:
        return int(self.equivalence.get("diverged", -1))

    def payload(self) -> Dict[str, object]:
        return {
            "schema": CHAOS_SCHEMA,
            "n_requests": self.n_requests,
            "fault_rates": self.fault_rates,
            "cells": self.cells,
            "equivalence": self.equivalence,
        }

    def write(self, path: str = DEFAULT_CHAOS_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def render(self) -> str:
        rows = []
        for rate in self.fault_rates:
            for side in ("baseline", "resilient"):
                cell = self.cells[self.cell_name(rate)][side]
                rows.append(
                    (
                        f"{rate:.0%}",
                        side,
                        f"{float(cell['availability']):.4f}",
                        cell["failed"],
                        cell["faults_injected"],
                        cell["p50_ms"],
                        cell["p95_ms"],
                        cell.get("retries", "-"),
                        cell.get("fallbacks", "-"),
                    )
                )
        table = format_table(
            [
                "Fault rate",
                "Stack",
                "Availability",
                "Failed",
                "Injected",
                "p50 ms",
                "p95 ms",
                "Retries",
                "Fallbacks",
            ],
            rows,
            title=f"Chaos sweep ({self.n_requests} requests per cell, simulated latency)",
        )
        return table + (
            f"\nZero-fault equivalence: diverged={self.diverged} "
            "(0 = resilience layer is free when nothing fails)"
        )


def _chaos_prompts(n: int, seed: int) -> List[str]:
    # Distinct questions: every request reaches the provider, so the
    # baseline's observed failure rate is the injected rate itself rather
    # than rate x cache-miss-fraction.
    return ["Question: " + query for query in make_queries(n, seed=seed)]


def _drive_chaos(stack, prompts: Sequence[str]) -> Dict[str, object]:
    latencies: List[float] = []
    cost = 0.0
    failed = 0
    for prompt in prompts:
        try:
            completion = stack.complete(prompt)
        except LLMError:
            failed += 1
            continue
        latencies.append(completion.latency_ms)
        cost += completion.cost
    ordered = sorted(latencies)
    return {
        "requests": len(prompts),
        "completed": len(latencies),
        "failed": failed,
        "availability": round(len(latencies) / max(len(prompts), 1), 6),
        "p50_ms": round(_exact_percentile(ordered, 50), 3),
        "p95_ms": round(_exact_percentile(ordered, 95), 3),
        "mean_ms": round(sum(ordered) / max(len(ordered), 1), 3),
        "cost_usd": round(cost, 6),
    }


def _chaos_equivalence(n_requests: int, seed: int) -> Dict[str, object]:
    """Full stack, fault injector armed at rate 0 + resilience layer,
    versus the same stack without either: completions must be identical."""

    def full_stack(with_faults: bool):
        client: object = LLMClient()
        if with_faults:
            client = FaultInjectingProvider(client, default_rate=0.0, seed=seed)
        return build_stack(
            client,
            cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
            chain=("babbage-002", "gpt-3.5-turbo", "gpt-4"),
            budget_usd=50.0,
            resilience=with_faults,
        )

    prompts = _chaos_prompts(n_requests, seed + 7)
    prompts = prompts + prompts[: max(1, n_requests // 4)]  # repeats: cache traffic
    reference = full_stack(with_faults=False)
    candidate = full_stack(with_faults=True)
    diverged = sum(
        1
        for prompt in prompts
        if reference.complete(prompt) != candidate.complete(prompt)
    )
    return {"requests": len(prompts), "diverged": diverged}


def run_chaos(
    n_requests: int = 300,
    fault_rates: Sequence[float] = (0.0, 0.05, 0.15),
    seed: int = 11,
    equivalence_requests: int = 40,
    config: Optional[ResilienceConfig] = None,
    write_path: Optional[str] = None,
) -> ChaosReport:
    """Sweep injected-fault rates over the unprotected and resilient stacks.

    Per rate, the same distinct-prompt stream is driven through (a) a bare
    metrics stack over a :class:`FaultInjectingProvider` — every injected
    fault is a failed request — and (b) the same provider wrapped in
    :class:`~repro.serving.resilience.ResilienceMiddleware`. The report
    records availability, simulated latency percentiles (backoff included),
    dollar cost and the recovery counters, plus the zero-fault equivalence
    check; all of it deterministic in ``seed``.
    """
    report = ChaosReport(n_requests=n_requests, fault_rates=[float(r) for r in fault_rates])
    prompts = _chaos_prompts(n_requests, seed)
    for rate in report.fault_rates:
        cell: Dict[str, Dict[str, object]] = {}
        for side in ("baseline", "resilient"):
            provider = FaultInjectingProvider(
                LLMClient(), default_rate=rate, seed=seed + 1
            )
            resilience = (config if config is not None else True) if side == "resilient" else None
            stack = build_stack(provider, resilience=resilience)
            outcome = _drive_chaos(stack, prompts)
            outcome["faults_injected"] = provider.total_injected
            if side == "resilient":
                snapshot = stack.stats.snapshot()["resilience"]
                outcome["retries"] = snapshot["retries"]
                outcome["recoveries"] = snapshot["recoveries"]
                outcome["backoff_ms"] = snapshot["backoff_ms"]
                outcome["breaker_opens"] = snapshot["breaker_opens"]
                outcome["breaker_short_circuits"] = snapshot["breaker_short_circuits"]
                outcome["fallbacks"] = (
                    snapshot["fallback_model_answers"] + snapshot["fallback_cache_answers"]
                )
                outcome["exhausted"] = snapshot["exhausted"]
            cell[side] = outcome
        report.cells[ChaosReport.cell_name(rate)] = cell
    report.equivalence = _chaos_equivalence(equivalence_requests, seed)
    if write_path is not None:
        report.write(write_path)
    return report


# Semantic-SQL benchmark lives in its own module; re-exported here so the
# perf surface stays one import (matching the hotpaths/serving/chaos runs).
from repro.bench.semsql import (  # noqa: E402
    DEFAULT_SEMSQL_REPORT_PATH,
    SEMSQL_SCHEMA,
    SemanticSQLReport,
    run_semantic_sql,
)

# Crash-recovery benchmark likewise lives in its own module.
from repro.bench.recovery import (  # noqa: E402
    DEFAULT_RECOVERY_REPORT_PATH,
    RECOVERY_SCHEMA,
    RecoveryReport,
    run_recovery,
)

# Gateway latency-under-load benchmark (open-loop Poisson) likewise.
from repro.bench.gateway import (  # noqa: E402
    DEFAULT_GATEWAY_REPORT_PATH,
    GATEWAY_SCHEMA,
    GatewayReport,
    run_gateway,
)
