"""Latency-under-load bench for the async gateway (open-loop Poisson).

The serving benches so far are *closed-loop*: they submit everything up
front and measure the saturated service rate (max QPS). That says nothing
about behavior at a given *offered* load — the regime where SLOs live.
This bench drives :class:`~repro.serving.gateway.AsyncGateway` with an
**open-loop Poisson arrival process** (seeded exponential inter-arrival
times; arrivals never wait on completions) at fractions of the backend's
analytic saturation rate, and measures the latency distribution and
per-class **goodput** — the fraction of offered requests answered in full
*within their deadline*:

* The **gateway** side runs with admission control on: three priority
  classes (EDF within, strict priority across), bounded per-class queues
  with backpressure, and shedding of expired requests.
* The **baseline** side is the same machinery with admission control
  off: one class, no deadlines passed to the scheduler (pure FIFO — no
  EDF sneaking priority back in), nothing ever shed.

Both sides are scored identically and externally: a request counts
toward goodput iff it got a full answer and its measured latency (from
its *intended arrival time*) is within the SLO its class prescribes. At
2x saturation the gateway must keep the interactive class at >= 90%
goodput while the FIFO baseline collapses (unbounded queue wait) —
``check_perf_gate.py`` enforces exactly that, plus zero divergence in
the equivalence cell below.

Determinism is re-proven on every run: the ``equivalence`` cell replays
one request stream through a ``workers=1`` no-deadline gateway and
through a serial ``ServingStack.complete`` loop on an identical fresh
stack, and counts any completion that is not bit-identical. The
``degradation`` cell is a deterministic (injected-clock) demo of the
expired-in-queue path routing through the resilience fallback chain.

Saturation is analytic, not measured: every service call sleeps
``service_ms`` wall-clock (GIL released) and ``workers`` dispatcher
threads serve in parallel, so capacity is ``workers * 1000 / service_ms``
requests/second regardless of batching.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import rng_from
from repro.bench.perf import SimulatedServiceProvider, _latency_summary
from repro.bench.reporting import format_table
from repro.errors import DeadlineExceededError
from repro.llm.client import LLMClient
from repro.llm.provider import make_client
from repro.serving.gateway import AsyncGateway, GatewayRequest
from repro.serving.stack import build_stack

DEFAULT_GATEWAY_REPORT_PATH = "BENCH_gateway.json"
GATEWAY_SCHEMA = "repro.bench.gateway/v1"

HIGH_PRIORITY_CLASS = "interactive"

# (class, share of traffic, deadline as a multiple of service_ms; None = no SLO)
DEFAULT_CLASS_MIX: Tuple[Tuple[str, float, Optional[float]], ...] = (
    ("interactive", 0.25, 8.0),
    ("standard", 0.50, 30.0),
    ("batch", 0.25, None),
)

_TOPICS = (
    "schema index join cache shard deadline queue admission priority "
    "latency budget quota backlog drain degrade"
).split()


def make_arrivals(n: int, rate_qps: float, seed: int = 11) -> List[float]:
    """``n`` Poisson arrival offsets (seconds) at ``rate_qps``: seeded
    exponential inter-arrival times, cumulative from t=0."""
    if n <= 0 or rate_qps <= 0:
        raise ValueError("n and rate_qps must be positive")
    rng = rng_from(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=n)
    out: List[float] = []
    total = 0.0
    for gap in gaps:
        total += float(gap)
        out.append(total)
    return out


def make_workload(
    n: int,
    service_ms: float,
    class_mix: Sequence[Tuple[str, float, Optional[float]]] = DEFAULT_CLASS_MIX,
    seed: int = 11,
) -> List[Tuple[str, str, Optional[float]]]:
    """``n`` (prompt, class, deadline_ms) triples with a seeded class mix.

    Prompts are distinct (no cache traffic), so every request pays the
    full simulated service time and the analytic saturation rate holds."""
    rng = rng_from(seed + 1)
    draws = rng.random(n)
    edges: List[Tuple[float, str, Optional[float]]] = []
    upto = 0.0
    for cls, share, factor in class_mix:
        upto += share
        deadline = None if factor is None else factor * service_ms
        edges.append((upto, cls, deadline))
    workload: List[Tuple[str, str, Optional[float]]] = []
    for i in range(n):
        draw = float(draws[i])
        cls, deadline = edges[-1][1], edges[-1][2]
        for cut, candidate_cls, candidate_deadline in edges:
            if draw < cut:
                cls, deadline = candidate_cls, candidate_deadline
                break
        topic = _TOPICS[i % len(_TOPICS)]
        workload.append((f"[{cls}] Question #{i}: about {topic}?", cls, deadline))
    return workload


@dataclass
class _Outcome:
    cls: str
    deadline_ms: Optional[float]
    status: str  # ok | degraded | shed | error
    latency_ms: float

    @property
    def in_deadline(self) -> bool:
        if self.status != "ok":
            return False
        if self.deadline_ms is None:
            return True
        return self.latency_ms <= self.deadline_ms


async def _drive_open_loop(
    gateway: AsyncGateway,
    workload: Sequence[Tuple[str, str, Optional[float]]],
    arrivals: Sequence[float],
    admission: bool,
) -> List[_Outcome]:
    """Spawn one task per arrival; latency counts from the *intended*
    arrival time, so driver lag and queueing both show up in the number."""
    loop = asyncio.get_running_loop()
    start = loop.time()
    outcomes: List[Optional[_Outcome]] = [None] * len(workload)

    async def one(i: int) -> None:
        prompt, cls, deadline = workload[i]
        due = start + arrivals[i]
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if admission:
            request = GatewayRequest(prompt, priority=cls, deadline_ms=deadline)
        else:
            # Baseline: one class, no deadline reaches the queue — pure
            # FIFO, nothing shed; the SLO is scored externally only.
            request = GatewayRequest(prompt)
        status = "ok"
        try:
            ticket = await gateway.enqueue(request)
            await ticket.future
            status = ticket.status  # ok | degraded
        except DeadlineExceededError:
            status = "shed"
        except Exception:
            status = "error"
        latency_ms = (loop.time() - due) * 1000.0
        outcomes[i] = _Outcome(cls, deadline, status, latency_ms)

    await asyncio.gather(*(one(i) for i in range(len(workload))))
    return [outcome for outcome in outcomes if outcome is not None]


def _run_side(
    workload: Sequence[Tuple[str, str, Optional[float]]],
    arrivals: Sequence[float],
    service_ms: float,
    workers: int,
    admission: bool,
    seed: int,
    max_queue_per_class: int,
) -> Dict[str, object]:
    """One (load, side) cell: fresh backend, open-loop drive, summary."""
    provider = SimulatedServiceProvider(
        make_client(), overhead_ms=service_ms, per_item_ms=0.0
    )
    stack = build_stack(provider)

    async def run() -> Tuple[List[_Outcome], float]:
        if admission:
            gateway = AsyncGateway(
                stack,
                classes=tuple(cls for cls, _share, _f in DEFAULT_CLASS_MIX),
                max_queue_per_class=max_queue_per_class,
                degrader=None,  # shed, don't degrade: keeps goodput unambiguous
                # Shallow dispatch window: once forwarded, a request is
                # FIFO inside the backend scheduler, so a deep inflight
                # pipeline would bury the priority decision. workers *
                # batch keeps the workers fed while the backlog stays in
                # the gateway's class queues where EDF/priority apply.
                max_inflight=workers * 4,
                workers=workers,
                max_batch_size=4,
                max_wait_ms=0.0,
                max_queue=4096,
            )
        else:
            gateway = AsyncGateway(
                stack,
                classes=("all",),
                max_queue_per_class=10**9,
                shed_expired=False,
                degrader=None,
                workers=workers,
                max_batch_size=4,
                max_wait_ms=0.0,
                max_queue=10**9,
            )
        t0 = time.perf_counter()
        async with gateway:
            outcomes = await _drive_open_loop(gateway, workload, arrivals, admission)
        return outcomes, time.perf_counter() - t0

    outcomes, elapsed = asyncio.run(run())
    served = [o.latency_ms for o in outcomes if o.status == "ok"]
    cell = _latency_summary(served or [0.0], elapsed)
    cell["completed"] = sum(1 for o in outcomes if o.status == "ok")
    cell["shed"] = sum(1 for o in outcomes if o.status == "shed")
    cell["degraded"] = sum(1 for o in outcomes if o.status == "degraded")
    cell["errors"] = sum(1 for o in outcomes if o.status == "error")
    cell["goodput"] = round(
        sum(1 for o in outcomes if o.in_deadline) / max(len(outcomes), 1), 4
    )
    classes: Dict[str, Dict[str, object]] = {}
    for cls, _share, _factor in DEFAULT_CLASS_MIX:
        mine = [o for o in outcomes if o.cls == cls]
        if not mine:
            continue
        in_deadline = sum(1 for o in mine if o.in_deadline)
        classes[cls] = {
            "offered": len(mine),
            "completed": sum(1 for o in mine if o.status == "ok"),
            "shed": sum(1 for o in mine if o.status == "shed"),
            "in_deadline": in_deadline,
            "goodput": round(in_deadline / len(mine), 4),
        }
    cell["classes"] = classes
    return cell


# ------------------------------------------------------ deterministic cells


def _equivalence_cell(n: int, seed: int) -> Dict[str, object]:
    """workers=1, no deadlines: gateway vs serial loop, bit-for-bit.

    The stream repeats prompts so the semantic cache is live state — any
    reordering by the gateway would flip hit patterns and diverge."""
    pool = [f"Question #{i}: about {_TOPICS[i % len(_TOPICS)]}?" for i in range(n // 3)]
    rng = rng_from(seed + 2)
    picks = rng.integers(0, len(pool), size=n)
    prompts = [pool[int(p)] for p in picks]

    serial_stack = build_stack(LLMClient(seed=seed), cache=True)
    expected = [serial_stack.complete(prompt) for prompt in prompts]

    gateway_stack = build_stack(LLMClient(seed=seed), cache=True)

    async def run() -> List[object]:
        async with AsyncGateway(gateway_stack, classes=("all",), workers=1) as gateway:
            return await gateway.complete_all(prompts)

    got = asyncio.run(run())
    diverged = sum(1 for a, b in zip(expected, got) if a != b)
    return {
        "n_requests": n,
        "diverged": diverged,
        "cache_hits_serial": serial_stack.stats.cache_reuse_hits,
        "cache_hits_gateway": gateway_stack.stats.cache_reuse_hits,
    }


class _ManualClock:
    def __init__(self) -> None:
        self.t = 1000.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def _degradation_cell(n: int, seed: int) -> Dict[str, object]:
    """Deterministic demo of the shed-vs-degrade decision tree.

    With an injected clock, requests expire in queue before the pump
    runs: a resilience-wired gateway answers them through the fallback
    chain (degraded), while an already-expired arrival is shed outright."""
    stack = build_stack(LLMClient(seed=seed), cache=True, resilience=True)
    clock = _ManualClock()

    async def run() -> Dict[str, int]:
        counts = {"degraded": 0, "shed_at_submit": 0, "served": 0}
        async with AsyncGateway(stack, clock=clock.now) as gateway:
            try:
                await gateway.submit("hopeless on arrival", deadline_ms=0)
            except DeadlineExceededError:
                counts["shed_at_submit"] += 1
            tickets = []
            for i in range(n):
                tickets.append(
                    await gateway.enqueue(
                        GatewayRequest(f"expiring question #{i}?", deadline_ms=5.0)
                    )
                )
            clock.advance(0.010)  # expire every queued request before dispatch
            for ticket in tickets:
                await ticket.future
                counts[ticket.status if ticket.status == "degraded" else "served"] += 1
            completion = await gateway.submit("healthy question?", deadline_ms=60_000)
            counts["served"] += 1 if completion.text else 0
        return counts

    counts = asyncio.run(run())
    return {
        "requests": n + 2,
        "degraded": counts["degraded"],
        "shed_at_submit": counts["shed_at_submit"],
        "served_in_time": counts["served"],
        "fallback_model_answers": stack.stats.fallback_model_answers,
    }


# ------------------------------------------------------------------ report


@dataclass
class GatewayReport:
    """Latency-under-load curves + equivalence/degradation cells."""

    service_ms: float
    workers: int
    saturation_qps: float
    duration_s: float
    cells: Dict[str, Dict[str, object]] = field(default_factory=dict)
    equivalence: Dict[str, object] = field(default_factory=dict)
    degradation: Dict[str, object] = field(default_factory=dict)
    smoke: bool = False

    @property
    def diverged(self) -> int:
        return int(self.equivalence.get("diverged", 1))

    def payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": GATEWAY_SCHEMA,
            "service_ms": self.service_ms,
            "workers": self.workers,
            "saturation_qps": self.saturation_qps,
            "duration_s": self.duration_s,
            "high_priority_class": HIGH_PRIORITY_CLASS,
            "cells": self.cells,
            "equivalence": self.equivalence,
            "degradation": self.degradation,
        }
        if self.smoke:
            out["smoke"] = True
        return out

    def to_json(self) -> str:
        return json.dumps(self.payload(), indent=2, sort_keys=True)

    def write(self, path: str = DEFAULT_GATEWAY_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def render(self) -> str:
        rows = []
        for load in sorted(self.cells, key=float):
            cell = self.cells[load]
            for side in ("gateway", "baseline"):
                summary = cell[side]
                interactive = summary["classes"].get(HIGH_PRIORITY_CLASS, {})
                rows.append(
                    (
                        f"{load}x",
                        side,
                        summary["qps"],
                        summary["p50_ms"],
                        summary["p95_ms"],
                        summary["p99_ms"],
                        interactive.get("goodput", "-"),
                        summary["shed"],
                    )
                )
        return format_table(
            ["Load", "Side", "QPS", "p50 ms", "p95 ms", "p99 ms", "int. goodput", "Shed"],
            rows,
            title=(
                f"Gateway latency under load (open-loop Poisson, saturation "
                f"{self.saturation_qps:.0f} qps, {self.workers} workers)"
            ),
        )


def run_gateway(
    service_ms: float = 20.0,
    workers: int = 2,
    load_fractions: Sequence[float] = (0.5, 1.0, 2.0),
    duration_s: float = 2.0,
    seed: int = 11,
    max_queue_per_class: int = 64,
    equivalence_n: int = 48,
    degradation_n: int = 6,
    write_path: Optional[str] = None,
    smoke: bool = False,
) -> GatewayReport:
    """Run the load sweep plus the deterministic equivalence/degradation
    cells; one fresh backend per (load, side) cell."""
    saturation = workers * 1000.0 / service_ms
    report = GatewayReport(
        service_ms=service_ms,
        workers=workers,
        saturation_qps=saturation,
        duration_s=duration_s,
        smoke=smoke,
    )
    for fraction in load_fractions:
        offered = saturation * fraction
        n = max(int(duration_s * offered), 20)
        workload = make_workload(n, service_ms, seed=seed)
        arrivals = make_arrivals(n, offered, seed=seed)
        cell: Dict[str, object] = {
            "offered_qps": round(offered, 3),
            "n_requests": n,
        }
        for side, admission in (("gateway", True), ("baseline", False)):
            cell[side] = _run_side(
                workload,
                arrivals,
                service_ms,
                workers,
                admission,
                seed,
                max_queue_per_class,
            )
        report.cells[f"{fraction:g}"] = cell
    report.equivalence = _equivalence_cell(equivalence_n, seed=seed)
    report.degradation = _degradation_cell(degradation_n, seed=seed)
    if write_path is not None:
        report.write(write_path)
    return report


__all__ = [
    "DEFAULT_GATEWAY_REPORT_PATH",
    "GATEWAY_SCHEMA",
    "HIGH_PRIORITY_CLASS",
    "GatewayReport",
    "make_arrivals",
    "make_workload",
    "run_gateway",
]
