"""CPU-heavy dispatch benchmark: thread pool vs process pool.

The serving throughput bench (:func:`repro.bench.perf.run_serving`) models
an I/O-bound provider (``time.sleep`` releases the GIL, so thread dispatch
overlaps perfectly). This module measures the opposite regime: a provider
that *computes* — a deterministic CPU burn per request standing in for
local inference, tokenization, or re-ranking — where the GIL serializes
thread dispatch and the scheduler's ``dispatch="process"`` mode is the
lever.

Everything stays deterministic: the burned work is a pure function of the
prompt, the completion a pure function of ``(seed, model, prompt)``, so
serial, threaded, and process-pool runs must produce byte-identical
completion texts — the report counts divergences and the CI gate requires
zero.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._util import stable_hash
from repro.llm.client import Completion, LLMClient

CPU_SCHEMA = "repro.bench.cpu/v1"
DEFAULT_CPU_REPORT_PATH = "BENCH_cpu.json"

DEFAULT_BURN_ITERS = 150_000
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def _burn(seed: int, iterations: int) -> int:
    """Pure-Python LCG spin: deterministic, GIL-bound CPU work."""
    state = seed & _LCG_MASK
    for _ in range(iterations):
        state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
    return state


class CpuHeavyProvider:
    """An :class:`LLMClient` wrapper that pays deterministic CPU per call.

    The burn's LCG is seeded from the prompt, so the work (and its final
    state, recorded in the completion metadata) is a pure function of the
    request — any scheduler may execute it anywhere without changing the
    answer. Unlike the sleep-based simulated provider, this load does NOT
    release the GIL: thread dispatch serializes on it, which is exactly
    the regime process dispatch exists for.
    """

    def __init__(self, seed: int = 7, burn_iters: int = DEFAULT_BURN_ITERS) -> None:
        self.seed = seed
        self.burn_iters = burn_iters
        self.inner = LLMClient(seed=seed)

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        digest = _burn(stable_hash(prompt, bits=63), self.burn_iters)
        completion = self.inner.complete(prompt, model=model)
        completion.metadata["cpu.digest"] = digest
        return completion

    def complete_batch(
        self, shared_prefix: str, items: List[str], model: Optional[str] = None
    ) -> List[Completion]:
        return [self.complete(shared_prefix + item, model=model) for item in items]

    def reseeded(self, offset: int) -> "CpuHeavyProvider":
        clone = CpuHeavyProvider(seed=self.seed + offset, burn_iters=self.burn_iters)
        return clone


def make_cpu_provider(seed: int = 7, burn_iters: int = DEFAULT_BURN_ITERS) -> CpuHeavyProvider:
    """Module-level factory for ``BatchingScheduler(dispatch="process")`` —
    picklable by reference, builds the worker-process provider."""
    return CpuHeavyProvider(seed=seed, burn_iters=burn_iters)


def _signature(completion: Completion) -> tuple:
    return (completion.text, completion.model, completion.metadata.get("cpu.digest"))


class _ForegroundPinger:
    """Measures GIL convoying: a thread that sleeps 1ms and times how long
    waking back up actually takes. In-process CPU burns (thread dispatch)
    hold the GIL, so the pinger stalls; with the burn exiled to worker
    processes the main interpreter stays responsive. This is the
    latency-side case for ``dispatch="process"`` — it holds even on a
    single core, where QPS can only reach parity."""

    SLEEP_S = 0.001

    def __init__(self) -> None:
        self.stalls_ms: List[float] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while not self._stop.is_set():
            start = time.perf_counter()
            time.sleep(self.SLEEP_S)
            elapsed = time.perf_counter() - start
            self.stalls_ms.append(max(0.0, (elapsed - self.SLEEP_S) * 1000.0))

    def __enter__(self) -> "_ForegroundPinger":
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        self._thread.join()


@dataclass
class CpuReport:
    """Throughput + equivalence of serial vs thread vs process dispatch."""

    schema: str = CPU_SCHEMA
    burn_iters: int = DEFAULT_BURN_ITERS
    n_requests: int = 0
    cpu_count: int = 0
    serial_qps: float = 0.0
    modes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    process_vs_thread: float = 0.0
    stall_reduction: float = 0.0  # thread p95 foreground stall / process p95
    diverged: int = 0
    smoke: bool = False

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2, sort_keys=True)


@dataclass
class _ModeResult:
    """Accumulated over interleaved trials of one dispatch mode."""

    best_qps: float = 0.0
    signatures: Optional[List[tuple]] = None
    stalls_ms: List[float] = field(default_factory=list)

    def stall_p95(self) -> float:
        if not self.stalls_ms:
            return 0.0
        ordered = sorted(self.stalls_ms)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _run_trial(
    prompts: List[str], result: _ModeResult, warm_requests: int, **scheduler_kwargs
) -> None:
    """One timed pass through ``prompts``; folds QPS/stalls into ``result``."""
    from repro.serving.scheduler import BatchingScheduler

    scheduler = BatchingScheduler(**scheduler_kwargs)
    try:
        # Warm off the clock with a full concurrent wave: process-pool
        # workers spawn lazily (interpreter boot + imports), so a single
        # warm request would leave all but one worker to pay that cost
        # inside the timed region.
        warm = [
            scheduler.submit(prompts[i % len(prompts)])
            for i in range(max(warm_requests, 1))
        ]
        for future in warm:
            future.result()
        # QPS pass: no pinger — its 1kHz wakeups would preempt worker
        # processes (they cost nothing in thread mode, where the pinger is
        # itself GIL-starved), skewing the very comparison being made.
        start = time.perf_counter()
        futures = [scheduler.submit(p) for p in prompts]
        results = [f.result() for f in futures]
        elapsed = time.perf_counter() - start
        # Stall pass: same warm scheduler, untimed, pinger running.
        with _ForegroundPinger() as pinger:
            for future in [scheduler.submit(p) for p in prompts]:
                future.result()
        result.stalls_ms.extend(pinger.stalls_ms)
    finally:
        scheduler.close()
    qps = len(prompts) / elapsed if elapsed > 0 else 0.0
    if qps > result.best_qps:
        result.best_qps = qps
    if result.signatures is None:
        result.signatures = [_signature(c) for c in results]


def run_cpu(
    n_requests: int = 48,
    burn_iters: int = DEFAULT_BURN_ITERS,
    seed: int = 7,
    trials: int = 3,
    workers: int = 4,
    write_path: Optional[str] = None,
    smoke: bool = False,
) -> CpuReport:
    """Measure serial vs thread-dispatch vs process-dispatch throughput on
    the CPU-burning provider, and verify all three produce byte-identical
    completions. Each concurrent mode reports its best-of-``trials`` QPS
    (interleaved trials + warm pools, to keep a noisy scheduler start or a
    cold spawn from deciding the comparison)."""
    report = CpuReport(
        burn_iters=burn_iters,
        n_requests=n_requests,
        cpu_count=os.cpu_count() or 1,
        smoke=smoke,
    )
    prompts = [f"What is the capital of country {i}?" for i in range(n_requests)]

    provider = make_cpu_provider(seed=seed, burn_iters=burn_iters)
    start = time.perf_counter()
    serial = [provider.complete(p) for p in prompts]
    serial_elapsed = time.perf_counter() - start
    report.serial_qps = round(n_requests / serial_elapsed, 2) if serial_elapsed else 0.0
    serial_sigs = [_signature(c) for c in serial]

    processes = max(2, os.cpu_count() or 1)
    thread_result = _ModeResult()
    process_result = _ModeResult()
    # Interleave thread/process trials so slow machine drift (a noisy
    # neighbor, thermal throttling) hits both modes evenly instead of
    # whichever mode happened to run last.
    for _trial in range(trials):
        _run_trial(
            prompts,
            thread_result,
            warm_requests=8 * workers,
            provider=make_cpu_provider(seed=seed, burn_iters=burn_iters),
            max_batch_size=8,
            max_wait_ms=0.5,
            workers=workers,
        )
        _run_trial(
            prompts,
            process_result,
            warm_requests=8 * processes,
            provider=None,
            max_batch_size=8,
            max_wait_ms=0.5,
            workers=workers,
            dispatch="process",
            provider_factory=make_cpu_provider,
            factory_kwargs={"seed": seed, "burn_iters": burn_iters},
            processes=processes,
        )

    thread_stall = thread_result.stall_p95()
    process_stall = process_result.stall_p95()
    report.modes = {
        "thread": {
            "qps": round(thread_result.best_qps, 2),
            "workers": workers,
            "foreground_stall_p95_ms": round(thread_stall, 3),
        },
        "process": {
            "qps": round(process_result.best_qps, 2),
            "processes": processes,
            "foreground_stall_p95_ms": round(process_stall, 3),
        },
    }
    report.process_vs_thread = (
        round(process_result.best_qps / thread_result.best_qps, 3)
        if thread_result.best_qps
        else 0.0
    )
    report.stall_reduction = (
        round(thread_stall / process_stall, 1) if process_stall > 0 else 0.0
    )
    report.diverged = sum(
        s != serial_sigs[i] for i, s in enumerate(thread_result.signatures or [])
    ) + sum(s != serial_sigs[i] for i, s in enumerate(process_result.signatures or []))

    if write_path:
        with open(write_path, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
    return report
