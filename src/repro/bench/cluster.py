"""Scale-out bench for the sharded multi-tenant serving cluster.

Measures :class:`~repro.serving.cluster.ServingCluster` throughput at
1/2/4/8 shards under an open-loop multi-tenant load (every request is
submitted up front — arrivals never wait on completions, so the measured
rate is the cluster's saturated service rate) and asserts two correctness
invariants on *every* scale cell:

* **diverged = 0** — each request's completion is byte-identical to the
  serial single-stack reference. Completions are deterministic functions
  of (prompt, model, seed) and the router keeps per-key order, so any
  shard count must reproduce the reference stream exactly.
* **budget_leakage = 0** — every tenant's LLM spend equals its reference
  spend to the cent (totals via :func:`math.fsum`, so float summation
  order across shard workers cannot manufacture phantom differences),
  and the cluster-wide spend is exactly the sum over tenants. One tenant
  billed for another tenant's call would break both at once.

The divergence-gated cells run the sharded cache in exact-match mode
(``reuse/augment thresholds = 1.0``): cross-key similarity hits are
*deterministic* in a serial run but inherently timing-dependent when keys
overlap in flight on different shards, so a concurrency bench that gated
on them would be gating on the scheduler, not the cluster. Similarity
tiers and the privacy-gated cross-tenant sharing path are exercised by
the test suite and by this bench's separate serial ``sharing`` cell.

Like :mod:`repro.bench.perf`, the LLM is wrapped in
:class:`~repro.bench.perf.SimulatedServiceProvider` so each service call
pays realistic GIL-releasing wall-clock; without it the bench would time
Python overhead instead of serving structure.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import rng_from
from repro.bench.perf import SimulatedServiceProvider, _latency_summary
from repro.bench.reporting import format_table
from repro.core.privacy.sharing import CacheSharingGate
from repro.llm.provider import make_client
from repro.serving.cluster import ServingCluster

DEFAULT_CLUSTER_REPORT_PATH = "BENCH_cluster.json"
CLUSTER_SCHEMA = "repro.bench.cluster/v1"

_VOCAB = (
    "select count join filter schema tuple index vector cache shard tenant "
    "route hash ring replica budget quota probe embed merge evict"
).split()


def make_tenant_stream(
    n_tenants: int,
    queries_per_tenant: int,
    length: int,
    seed: int = 23,
) -> List[Tuple[str, str]]:
    """An interleaved multi-tenant request stream with skewed repetition.

    Each tenant gets its own ``queries_per_tenant`` distinct prompts
    (prefixed with the tenant name, so tenants never collide on keys);
    the stream draws (tenant, prompt) pairs with Zipf-ish skew over each
    tenant's prompts, round-robining tenants so every shard sees mixed
    traffic."""
    if n_tenants <= 0 or queries_per_tenant <= 0 or length <= 0:
        raise ValueError("n_tenants, queries_per_tenant and length must be positive")
    rng = rng_from(seed)
    tenants = [f"tenant-{i}" for i in range(n_tenants)]
    prompts: Dict[str, List[str]] = {}
    for tenant in tenants:
        prompts[tenant] = []
        for i in range(queries_per_tenant):
            words = " ".join(rng.choice(_VOCAB, size=int(rng.integers(3, 8))))
            prompts[tenant].append(f"[{tenant}] Question: {words} #{i}?")
    picks = (rng.random(length) ** 2 * queries_per_tenant).astype(int)
    stream: List[Tuple[str, str]] = []
    for i in range(length):
        tenant = tenants[i % n_tenants]
        index = min(int(picks[i]), queries_per_tenant - 1)
        stream.append((tenant, prompts[tenant][index]))
    return stream


def _build_cluster(
    n_shards: int,
    overhead_ms: float,
    per_item_ms: float,
    tenant_capacity: int,
    sharing: Optional[CacheSharingGate] = None,
) -> ServingCluster:
    return ServingCluster(
        lambda shard: SimulatedServiceProvider(
            make_client(), overhead_ms=overhead_ms, per_item_ms=per_item_ms
        ),
        n_shards=n_shards,
        tenant_capacity=tenant_capacity,
        # Exact-match mode: only a repeat of the same key hits (see module
        # docstring) — hit patterns are then independent of cross-key
        # timing, which is what makes diverged=0 a fair gate at any
        # shard count.
        reuse_threshold=1.0,
        augment_threshold=1.0,
        sharing=sharing,
    )


def _tenant_spend(
    stream: Sequence[Tuple[str, str]], completions: Sequence[object]
) -> Dict[str, float]:
    """Per-tenant spend from the completion stream via order-independent
    :func:`math.fsum` (ledger ``+=`` order varies across shard workers)."""
    costs: Dict[str, List[float]] = {}
    for (tenant, _prompt), completion in zip(stream, completions):
        costs.setdefault(tenant, []).append(completion.cost)
    return {tenant: math.fsum(values) for tenant, values in sorted(costs.items())}


def _leakage(
    reference: Dict[str, float], observed: Dict[str, float], ledgers: Dict[str, float]
) -> int:
    """Count of tenants whose accounting differs from the reference.

    A tenant leaks if its completion-stream spend differs from the
    reference run's, or if the cluster's enforcement ledger (the number
    budget checks actually read) drifted from that spend."""
    leaks = 0
    for tenant in sorted(set(reference) | set(observed) | set(ledgers)):
        expected = reference.get(tenant)
        spent = observed.get(tenant)
        ledger = ledgers.get(tenant)
        if expected is None or spent is None or ledger is None:
            leaks += 1
        elif expected != spent or abs(ledger - spent) > 1e-9:
            leaks += 1
    return leaks


@dataclass
class ClusterReport:
    """QPS scaling + equivalence/isolation results across shard counts."""

    n_requests: int
    n_tenants: int
    queries_per_tenant: int
    overhead_ms: float
    per_item_ms: float
    shard_counts: List[int] = field(default_factory=list)
    cells: Dict[str, Dict[str, float]] = field(default_factory=dict)
    sharing: Dict[str, object] = field(default_factory=dict)
    smoke: bool = False

    @property
    def diverged(self) -> int:
        return sum(int(cell.get("diverged", 1)) for cell in self.cells.values())

    @property
    def budget_leakage(self) -> int:
        return sum(int(cell.get("budget_leakage", 1)) for cell in self.cells.values())

    def speedup(self, n_shards: int) -> float:
        base = float(self.cells["1"]["qps"])
        return float(self.cells[str(n_shards)]["qps"]) / max(base, 1e-9)

    @property
    def scaling(self) -> Dict[str, float]:
        return {
            str(n): round(self.speedup(n), 3)
            for n in self.shard_counts
            if str(n) in self.cells and "1" in self.cells
        }

    def payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": CLUSTER_SCHEMA,
            "n_requests": self.n_requests,
            "n_tenants": self.n_tenants,
            "queries_per_tenant": self.queries_per_tenant,
            "overhead_ms": self.overhead_ms,
            "per_item_ms": self.per_item_ms,
            "shard_counts": self.shard_counts,
            "cells": self.cells,
            "scaling": self.scaling,
            "sharing": self.sharing,
        }
        if self.smoke:
            out["smoke"] = True
        return out

    def to_json(self) -> str:
        return json.dumps(self.payload(), indent=2, sort_keys=True)

    def write(self, path: str = DEFAULT_CLUSTER_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def render(self) -> str:
        rows = []
        for n in self.shard_counts:
            cell = self.cells[str(n)]
            rows.append(
                (
                    n,
                    cell["qps"],
                    cell["p50_ms"],
                    cell["p95_ms"],
                    round(self.speedup(n), 2),
                    int(cell["diverged"]),
                    int(cell["budget_leakage"]),
                )
            )
        return format_table(
            ["Shards", "QPS", "p50 ms", "p95 ms", "Speedup", "Diverged", "Leakage"],
            rows,
            title=(
                f"Cluster scale-out: {self.n_requests} requests, "
                f"{self.n_tenants} tenants (open-loop, saturated)"
            ),
        )


def run_cluster(
    n_tenants: int = 6,
    queries_per_tenant: int = 120,
    n_requests: int = 2400,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    overhead_ms: float = 8.0,
    per_item_ms: float = 0.5,
    seed: int = 23,
    write_path: Optional[str] = None,
    smoke: bool = False,
) -> ClusterReport:
    """Run the scale-out sweep and the serial sharing demo cell."""
    if 1 not in shard_counts:
        raise ValueError("shard_counts must include 1 (the scaling baseline)")
    stream = make_tenant_stream(n_tenants, queries_per_tenant, n_requests, seed=seed)
    tenant_capacity = 2 * queries_per_tenant  # no evictions: equivalence holds

    # Reference: the single stack, serial, on the caller thread.
    reference = _build_cluster(1, overhead_ms, per_item_ms, tenant_capacity)
    try:
        expected = [
            reference.complete(prompt, tenant=tenant) for tenant, prompt in stream
        ]
    finally:
        reference.close()
    expected_text = [completion.text for completion in expected]
    expected_spend = _tenant_spend(stream, expected)

    report = ClusterReport(
        n_requests=n_requests,
        n_tenants=n_tenants,
        queries_per_tenant=queries_per_tenant,
        overhead_ms=overhead_ms,
        per_item_ms=per_item_ms,
        shard_counts=sorted(set(int(n) for n in shard_counts)),
        smoke=smoke,
    )
    for n_shards in report.shard_counts:
        cluster = _build_cluster(n_shards, overhead_ms, per_item_ms, tenant_capacity)
        try:
            latencies: List[float] = []
            start = time.perf_counter()
            submitted = []
            for tenant, prompt in stream:  # open loop: all arrivals up front
                t_submit = time.perf_counter()
                future = cluster.submit(prompt, tenant=tenant)
                future.add_done_callback(
                    lambda _f, t0=t_submit: latencies.append(
                        (time.perf_counter() - t0) * 1000.0
                    )
                )
                submitted.append(future)
            completions = [future.result() for future in submitted]
            elapsed = time.perf_counter() - start
            observed_spend = _tenant_spend(stream, completions)
            ledgers = {
                tenant: cluster.spent_usd(tenant) for tenant in cluster.tenants()
            }
            cell = _latency_summary(latencies, elapsed)
            cell["diverged"] = sum(
                1
                for got, want in zip(completions, expected_text)
                if got.text != want
            )
            cell["budget_leakage"] = _leakage(expected_spend, observed_spend, ledgers)
            cell["llm_calls"] = cluster.stats.llm_calls
            cell["cache_hit_rate"] = round(cluster.stats.cache_hit_rate, 4)
            report.cells[str(n_shards)] = cell
        finally:
            cluster.close()

    report.sharing = _run_sharing_cell(overhead_ms, per_item_ms, smoke=smoke)
    if write_path is not None:
        report.write(write_path)
    return report


def _run_sharing_cell(
    overhead_ms: float, per_item_ms: float, smoke: bool = False
) -> Dict[str, object]:
    """Serial demo of gated cross-tenant sharing (not divergence-gated:
    who serves whom depends on request order across tenants, which is the
    point of making it an explicit, accounted policy decision)."""
    n_prompts = 4 if smoke else 16
    gate = CacheSharingGate(
        [("tenant-0", "tenant-1")],
        epsilon_per_share=0.1,
        epsilon_budget=0.1 * (n_prompts - 1),
    )
    cluster = ServingCluster(
        lambda shard: SimulatedServiceProvider(
            make_client(), overhead_ms=overhead_ms, per_item_ms=per_item_ms
        ),
        n_shards=4,
        sharing=gate,
    )
    try:
        prompts = [f"Question: shared corpus item #{i}?" for i in range(n_prompts)]
        for prompt in prompts:
            cluster.complete(prompt, tenant="tenant-0")
        shared_costs = [
            cluster.complete(prompt, tenant="tenant-1").cost for prompt in prompts
        ]
        outsider_costs = [
            cluster.complete(prompt, tenant="tenant-2").cost for prompt in prompts
        ]
        return {
            "prompts": n_prompts,
            "shares_served": gate.total_shares(),
            "shares_denied_budget": gate.denied_budget,
            "epsilon_spent": round(gate.epsilon_spent(), 6),
            "epsilon_budget": gate.epsilon_budget,
            "peer_free_answers": sum(1 for cost in shared_costs if cost == 0.0),
            "outsider_free_answers": sum(1 for cost in outsider_costs if cost == 0.0),
            "saved_usd": round(
                math.fsum(cluster.cache.shared_cost_saved.values()), 6
            ),
            "ledger": gate.ledger(),
        }
    finally:
        cluster.close()


__all__ = [
    "CLUSTER_SCHEMA",
    "ClusterReport",
    "DEFAULT_CLUSTER_REPORT_PATH",
    "make_tenant_stream",
    "run_cluster",
]
