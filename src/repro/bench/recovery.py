"""Benchmark: crash-recovery sweep over the durable serving stack.

Exercises :mod:`repro.durability` the way an unreliable deployment would:

* **Reference run** — a cache + cascade + budget stack processes a prompt
  stream (distinct questions plus repeats) with no faults; its completions
  and :func:`~repro.durability.comparable_state` snapshot are the ground
  truth.
* **Crash sweep** — the same stack is rebuilt over a
  :class:`~repro.llm.faults.CrashPoint` client for *every* provider-level
  request index. Each run dies mid-stream, is recovered from the durable
  directory (snapshot + journal replay) into a fresh process-equivalent
  stack, resumes the remaining prompts, and is compared bit for bit
  against the reference. ``diverged`` counts any mismatch — the
  acceptance gate is **zero** at every crash index.
* **Journal scaling** — recovery wall-time measured against journal
  length (requests since the last checkpoint), showing replay cost grows
  with the journal, which is exactly what ``checkpoint_every`` bounds.
* **Warm start** — a recovered stack re-answers the distinct questions;
  every one must come from the restored semantic cache with **zero** new
  provider calls (the replayed-call savings the journal buys).

``benchmarks/bench_perf_recovery.py --smoke`` runs a reduced sweep in CI
and fails on any divergence or any warm-start provider call. Completions
and state are deterministic; only the ``*_ms`` timings are wall-clock.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.reporting import format_table
from repro.core.cache import SemanticCache
from repro.durability import comparable_state, snapshot_stack_state
from repro.errors import SimulatedCrashError
from repro.llm.client import LLMClient
from repro.llm.faults import CrashPoint
from repro.serving import build_stack

RECOVERY_SCHEMA = "repro.bench.recovery/v1"
DEFAULT_RECOVERY_REPORT_PATH = "BENCH_recovery.json"

_CHAIN = ("babbage-002", "gpt-3.5-turbo", "gpt-4")


def recovery_prompts(n_distinct: int, n_repeats: int, seed: int = 0) -> List[str]:
    """A deterministic stream: distinct questions then early repeats, so
    the sweep exercises both cold provider calls and cache reuse hits."""
    base = [f"Question {seed}: who directed film number {i}?" for i in range(n_distinct)]
    return base + base[: min(n_repeats, n_distinct)]


def _build(client: object, durable_dir: Optional[str] = None, **kwargs: object):
    return build_stack(
        client,
        cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
        chain=_CHAIN,
        budget_usd=50.0,
        durable_dir=durable_dir,
        **kwargs,
    )


@dataclass
class RecoveryReport:
    """Crash-sweep outcomes plus journal-scaling and warm-start sections.

    ``crash_points`` holds one row per provider-level crash index:
    where the crash surfaced, the journal length replayed at recovery,
    the recovery wall-time, and the two divergence flags. Everything but
    the ``*_ms`` timings is a deterministic function of the seed.
    """

    n_prompts: int
    n_distinct: int
    checkpoint_every: int
    provider_requests: int = 0
    crash_points: List[Dict[str, object]] = field(default_factory=list)
    journal_scaling: List[Dict[str, object]] = field(default_factory=list)
    warm_start: Dict[str, object] = field(default_factory=dict)

    @property
    def diverged(self) -> int:
        return sum(
            int(bool(point["completions_diverged"])) + int(bool(point["state_diverged"]))
            for point in self.crash_points
        )

    @property
    def warm_start_provider_calls(self) -> int:
        return int(self.warm_start.get("new_provider_calls", -1))

    def payload(self) -> Dict[str, object]:
        return {
            "schema": RECOVERY_SCHEMA,
            "n_prompts": self.n_prompts,
            "n_distinct": self.n_distinct,
            "checkpoint_every": self.checkpoint_every,
            "provider_requests": self.provider_requests,
            "diverged": self.diverged,
            "crash_points": self.crash_points,
            "journal_scaling": self.journal_scaling,
            "warm_start": self.warm_start,
        }

    def write(self, path: str = DEFAULT_RECOVERY_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def render(self) -> str:
        rows = [
            (
                point["crash_at"],
                point["crashed_at_request"],
                point["journal_len"],
                point["replayed"],
                f"{float(point['recovery_ms']):.2f}",
                "yes" if point["completions_diverged"] or point["state_diverged"] else "no",
            )
            for point in self.crash_points
        ]
        table = format_table(
            ["Crash idx", "At request", "Journal", "Replayed", "Recovery ms", "Diverged"],
            rows,
            title=(
                f"Crash-recovery sweep ({self.provider_requests} provider-level "
                f"crash indices, checkpoint every {self.checkpoint_every})"
            ),
        )
        scaling = format_table(
            ["Journal len", "Recovery ms"],
            [
                (point["journal_len"], f"{float(point['recovery_ms']):.2f}")
                for point in self.journal_scaling
            ],
            title="Recovery time vs journal length (no checkpoints)",
        )
        warm = (
            f"Warm start: {self.warm_start.get('repeat_queries')} repeat queries, "
            f"{self.warm_start_provider_calls} new provider calls, "
            f"{self.warm_start.get('provider_calls_saved')} provider calls saved "
            f"(${float(self.warm_start.get('cost_saved_usd', 0.0)):.4f})"
        )
        return "\n\n".join(
            [table, scaling, warm, f"Total diverged: {self.diverged} (acceptance: 0)"]
        )


def _drive(stack, prompts: Sequence[str]):
    """Run prompts until a simulated crash; returns (completions, crash_index)
    where ``crash_index`` is the stack-level request the crash surfaced in
    (None if the stream finished). One stack-level request can issue several
    provider-level calls (cascade escalations), so the two indices differ."""
    completions = []
    for index, prompt in enumerate(prompts):
        try:
            completions.append(stack.complete(prompt))
        except SimulatedCrashError:
            return completions, index
    return completions, None


def run_recovery(
    n_distinct: int = 10,
    n_repeats: int = 4,
    checkpoint_every: int = 5,
    scaling_lengths: Sequence[int] = (2, 6, 12),
    seed: int = 0,
    write_path: Optional[str] = None,
) -> RecoveryReport:
    """Run the full sweep; see the module docstring for the four phases."""
    prompts = recovery_prompts(n_distinct, n_repeats, seed)
    report = RecoveryReport(
        n_prompts=len(prompts), n_distinct=n_distinct, checkpoint_every=checkpoint_every
    )

    reference = _build(LLMClient())
    ref_completions = [reference.complete(prompt) for prompt in prompts]
    ref_state = comparable_state(snapshot_stack_state(reference))

    # How many provider-level requests does the uncrashed stream make?
    probe = CrashPoint(LLMClient(), crash_at=None)
    probe_stack = _build(probe)
    for prompt in prompts:
        probe_stack.complete(prompt)
    report.provider_requests = probe.requests_seen

    for crash_at in range(report.provider_requests):
        directory = tempfile.mkdtemp(prefix="repro-recovery-")
        try:
            crashing = _build(
                CrashPoint(LLMClient(), crash_at=crash_at),
                durable_dir=directory,
                checkpoint_every=checkpoint_every,
            )
            completions, crashed_at = _drive(crashing, prompts)
            journal_len = len(crashing.durability.store.journal)
            start = time.perf_counter()
            recovered = _build(
                LLMClient(), durable_dir=directory, checkpoint_every=checkpoint_every
            )
            recovery_ms = (time.perf_counter() - start) * 1000.0
            replayed = journal_len
            for prompt in prompts[crashed_at:]:
                completions.append(recovered.complete(prompt))
            state = comparable_state(snapshot_stack_state(recovered))
            report.crash_points.append(
                {
                    "crash_at": crash_at,
                    "crashed_at_request": crashed_at,
                    "journal_len": journal_len,
                    "replayed": replayed,
                    "recovery_ms": recovery_ms,
                    "completions_diverged": completions != ref_completions,
                    "state_diverged": state != ref_state,
                }
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    # Recovery time as a function of journal length: no checkpoints, so the
    # whole stream sits in the journal and replay cost scales with it.
    for length in scaling_lengths:
        directory = tempfile.mkdtemp(prefix="repro-recovery-scale-")
        try:
            writer = _build(LLMClient(), durable_dir=directory)
            for prompt in prompts[: min(length, len(prompts))]:
                writer.complete(prompt)
            journal_len = len(writer.durability.store.journal)
            start = time.perf_counter()
            reader = _build(LLMClient(), durable_dir=directory)
            recovery_ms = (time.perf_counter() - start) * 1000.0
            replayed = len(reader.durability.store.journal)
            report.journal_scaling.append(
                {
                    "journal_len": journal_len,
                    "replayed": replayed,
                    "recovery_ms": recovery_ms,
                }
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    # Warm start: a recovered stack must answer every repeat of the distinct
    # questions from its restored cache — zero new provider-level calls.
    directory = tempfile.mkdtemp(prefix="repro-recovery-warm-")
    try:
        first_run = _build(LLMClient(), durable_dir=directory)
        cold_cost = 0.0
        for prompt in prompts:
            cold_cost += first_run.complete(prompt).cost
        first_run.checkpoint()
        cold_calls = first_run.stats.llm_calls

        warm = _build(LLMClient(), durable_dir=directory)
        calls_before = warm.stats.llm_calls
        warm_answers = [warm.complete(prompt) for prompt in prompts[:n_distinct]]
        report.warm_start = {
            "repeat_queries": n_distinct,
            "new_provider_calls": warm.stats.llm_calls - calls_before,
            "provider_calls_saved": cold_calls,
            "cost_saved_usd": cold_cost,
            "answers_match_reference": [c.text for c in warm_answers]
            == [c.text for c in ref_completions[:n_distinct]],
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    if write_path is not None:
        report.write(write_path)
    return report
