"""Column type annotation and missing-label inference engines.

``ColumnTypeEngine`` reproduces the paper's Section II-C1 example verbatim:
the prompt lists candidate types, shows a few example columns, and asks for
the type of a new column ("Basketball||Badminton||Table Tennis, this column
type is __"). The engine combines regex/gazetteer heuristics with few-shot
nearest-neighbor over the in-prompt examples — it truly uses the examples,
so the ICL bonus is mechanistic, not simulated.

``LabelInferEngine`` covers missing-field annotation (Section II-A2): rows
serialized as "attribute: value; ..." sentences, a few complete examples,
then a row with a missing field to fill in. Inference is k-nearest-neighbor
over the serialized example rows.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro._util import jaccard, words
from repro.llm.engines.base import (
    Engine,
    EngineResult,
    TaskContext,
    count_examples,
    difficulty_jitter,
)

_TYPES_RE = re.compile(r"(?i)following column types\s*:\s*([^.\n]+)")
_EXAMPLE_COLUMN_RE = re.compile(
    r"(?im)^\s*\(?\d+\)?[\s.]*(.+?),\s*this column type is\s+([A-Za-z_ ]+?)\s*[.;]?\s*$"
)
_QUERY_COLUMN_RE = re.compile(
    r"(?im)^\s*(.+?),\s*this column type is\s*(?:_+|\?)\s*[.;]?\s*$"
)

# Value-shape heuristics: (type name, predicate on a value list).
_MONTHS = {"jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec"}


def _looks_like_date(values: List[str]) -> bool:
    date_re = re.compile(r"^\d{1,4}[-/]\d{1,2}[-/]\d{1,4}$")
    hits = 0
    for v in values:
        lowered = v.strip().lower()
        if date_re.match(lowered) or any(lowered.startswith(m) for m in _MONTHS):
            hits += 1
    return hits >= max(1, len(values) // 2)


def _looks_numeric(values: List[str]) -> bool:
    def is_num(v: str) -> bool:
        try:
            float(v.replace(",", ""))
            return True
        except ValueError:
            return False

    return all(is_num(v.strip()) for v in values if v.strip())


class ColumnTypeEngine(Engine):
    """Predicts a column's semantic type from its values."""

    name = "column_type"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        types_match = _TYPES_RE.search(prompt)
        query_match = None
        for query_match in _QUERY_COLUMN_RE.finditer(prompt):
            pass  # last blank-typed column is the query
        if types_match is None or query_match is None:
            return None
        candidate_types = [t.strip().lower() for t in types_match.group(1).split(",") if t.strip()]
        examples: List[Tuple[List[str], str]] = []
        for m in _EXAMPLE_COLUMN_RE.finditer(prompt):
            label = m.group(2).strip().lower()
            if label in candidate_types:
                examples.append(([v.strip() for v in m.group(1).split("||")], label))
        query_values = [v.strip() for v in query_match.group(1).split("||") if v.strip()]
        if not query_values:
            return None

        answer = self._classify(query_values, candidate_types, examples, context)
        wrongs = [t for t in candidate_types if t != answer][:3] or ["unknown"]
        # More candidate types and fewer examples → harder.
        difficulty = 0.30 + 0.03 * max(0, len(candidate_types) - 3) - 0.02 * len(examples)
        difficulty = max(0.05, min(0.9, difficulty + difficulty_jitter(query_match.group(1))))
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=len(examples) or count_examples(prompt),
            metadata={"candidates": candidate_types},
        )

    def _classify(
        self,
        values: List[str],
        candidate_types: List[str],
        examples: List[Tuple[List[str], str]],
        context: TaskContext,
    ) -> str:
        scores: Dict[str, float] = {t: 0.0 for t in candidate_types}

        # 1. Shape heuristics.
        if "date" in scores and _looks_like_date(values):
            scores["date"] += 2.0
        for numeric_type in ("year", "price", "population", "capacity", "number"):
            if numeric_type in scores and _looks_numeric(values):
                scores[numeric_type] += 1.5

        # 2. Gazetteer from the knowledge base (the model's "world knowledge").
        kb = context.knowledge
        gazetteers = {
            "country": set(v.lower() for v in kb.entities_of_type("country")),
            "city": set(v.lower() for v in kb.entities_of_type("city")),
            "person": set(v.lower() for v in kb.entities_of_type("person")),
            "film": set(v.lower() for v in kb.entities_of_type("film")),
            "team": set(v.lower() for v in kb.entities_of_type("team")),
            "sports": {
                "basketball", "football", "baseball", "hockey", "tennis",
                "volleyball", "rugby", "cricket", "badminton", "table tennis",
                "golf", "swimming",
            },
            "movie": set(v.lower() for v in kb.entities_of_type("film")),
        }
        # Person-name shape: "Xxxx Yyyy".
        person_shape = sum(
            1 for v in values if re.match(r"^[A-Z][a-z]+( [A-Z][a-z]+)+$", v.strip())
        )
        if "person" in scores:
            scores["person"] += 0.8 * person_shape / max(1, len(values))
        for type_name, vocab in gazetteers.items():
            if type_name not in scores:
                continue
            hits = sum(1 for v in values if v.strip().lower() in vocab)
            scores[type_name] += 2.5 * hits / max(1, len(values))

        # 3. Few-shot nearest neighbor: token overlap with example columns.
        query_tokens = [w.lower() for v in values for w in words(v)]
        for example_values, label in examples:
            example_tokens = [w.lower() for v in example_values for w in words(v)]
            scores[label] = scores.get(label, 0.0) + 1.2 * jaccard(query_tokens, example_tokens)

        best = max(candidate_types, key=lambda t: (scores.get(t, 0.0), -candidate_types.index(t)))
        return best


class LabelInferEngine(Engine):
    """Fills a missing field by k-NN over serialized example rows."""

    name = "label_infer"

    _ROW_RE = re.compile(r"(?im)^\s*row\s*:\s*(.+)$")
    _TARGET_RE = re.compile(r"(?i)predict the value of\s+['\"]?(\w+)['\"]?")

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        target_match = self._TARGET_RE.search(prompt)
        if target_match is None:
            return None
        target = target_match.group(1).strip().lower()
        rows = [self._parse_row(m.group(1)) for m in self._ROW_RE.finditer(prompt)]
        rows = [r for r in rows if r]
        labeled = [r for r in rows if r.get(target) not in (None, "", "?")]
        unlabeled = [r for r in rows if r.get(target) in (None, "", "?")]
        if not labeled or not unlabeled:
            return None
        query = unlabeled[-1]

        def field_similarity(a: str, b: str) -> float:
            """Per-field closeness: numeric distance when both parse as
            numbers (ages, BMIs, ...), token overlap otherwise."""
            try:
                fa, fb = float(a), float(b)
            except (TypeError, ValueError):
                if a == b and a:
                    return 1.0
                return jaccard(words(str(a)), words(str(b)))
            span = max(abs(fa), abs(fb), 1e-9)
            return max(0.0, 1.0 - abs(fa - fb) / span)

        # ID-like fields (distinct value per example row) carry no signal
        # for nearest-neighbor inference; down-weight them the way a human
        # reader ignores row identifiers.
        all_keys = (set(query) | {k for r in labeled for k in r}) - {target}
        key_weights: Dict[str, float] = {}
        for key in all_keys:
            values_seen = [str(r.get(key, "")) for r in labeled]
            distinct_ratio = len(set(values_seen)) / max(1, len(values_seen))
            key_weights[key] = 0.1 if distinct_ratio >= 0.99 and len(values_seen) > 2 else 1.0

        def similarity(row: Dict[str, str]) -> float:
            keys = (set(row) | set(query)) - {target}
            if not keys:
                return 0.0
            total_weight = sum(key_weights.get(k, 1.0) for k in keys)
            return sum(
                key_weights.get(k, 1.0)
                * field_similarity(str(row.get(k, "")), str(query.get(k, "")))
                for k in keys
            ) / max(total_weight, 1e-9)

        ranked = sorted(labeled, key=similarity, reverse=True)
        top_k = ranked[: min(3, len(ranked))]
        votes = Counter(str(r[target]) for r in top_k)
        answer = votes.most_common(1)[0][0]
        alternatives = [v for v in {str(r[target]) for r in labeled} if v != answer]
        difficulty = 0.42 - 0.03 * len(labeled)
        difficulty = max(0.05, min(0.9, difficulty + difficulty_jitter(str(query))))
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=alternatives[:3] or ["unknown"],
            engine=self.name,
            n_examples=len(labeled),
            metadata={"target": target},
        )

    @staticmethod
    def _parse_row(text: str) -> Dict[str, str]:
        row: Dict[str, str] = {}
        for piece in text.split(";"):
            if ":" not in piece:
                continue
            key, value = piece.split(":", 1)
            row[key.strip().lower()] = value.strip()
        return row
