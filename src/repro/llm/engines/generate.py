"""SQL generation engine (Section II-A1, Fig 2).

Prompts carry the database schema (CREATE TABLE text) and a constraint line
("kinds=simple,join,subquery; count=5"). The engine parses the schema with
the real SQL parser, infers join keys from ``<table>_id`` naming, and emits
the requested number of queries of the requested kinds — including
semantically-equivalent pairs for DBMS logic-bug testing (the pivoted/
ternary-style rewrites of ref [20]).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro._util import rng_from, stable_hash
from repro.errors import SQLError
from repro.llm.engines.base import Engine, EngineResult, TaskContext, count_examples
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_sql
from repro.sqldb.types import SQLType

_INSTRUCTION_RE = re.compile(r"(?i)generate\s+(\d+)\s+sql quer(?:y|ies)")
_CONSTRAINT_RE = re.compile(r"(?im)^\s*constraints\s*:\s*(.+)$")

KINDS = ("simple", "join", "subquery", "aggregate", "equivalent_pair")


def _parse_schema(prompt: str) -> Dict[str, List[Tuple[str, SQLType]]]:
    """Pull CREATE TABLE statements out of the prompt and parse them."""
    tables: Dict[str, List[Tuple[str, SQLType]]] = {}
    for match in re.finditer(r"(?is)(CREATE TABLE .*?\))\s*;", prompt):
        try:
            statements = parse_sql(match.group(1))
        except SQLError:
            continue
        for stmt in statements:
            if isinstance(stmt, ast.CreateTable):
                tables[stmt.name] = [(c.name, c.sql_type) for c in stmt.columns]
    return tables


def _numeric_columns(columns: List[Tuple[str, SQLType]]) -> List[str]:
    return [n for n, t in columns if t in (SQLType.INTEGER, SQLType.REAL)]


def _text_columns(columns: List[Tuple[str, SQLType]]) -> List[str]:
    return [n for n, t in columns if t is SQLType.TEXT]


def _join_pairs(tables: Dict[str, List[Tuple[str, SQLType]]]) -> List[Tuple[str, str, str]]:
    """(left, right, key) pairs where left has a column named right+'_id'."""
    pairs = []
    for left, columns in tables.items():
        names = {n for n, _t in columns}
        for right in tables:
            if right == left:
                continue
            key = f"{right}_id"
            right_names = {n for n, _t in tables[right]}
            if key in names and key in right_names:
                pairs.append((left, right, key))
    return pairs


class SQLGenEngine(Engine):
    """Generates constraint-satisfying SQL over the prompt's schema."""

    name = "sql_gen"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        instruction = _INSTRUCTION_RE.search(prompt)
        if instruction is None:
            return None
        count = max(1, min(50, int(instruction.group(1))))
        tables = _parse_schema(prompt)
        if not tables:
            return None
        constraint_match = _CONSTRAINT_RE.search(prompt)
        kinds = list(KINDS[:4])
        if constraint_match:
            m = re.search(r"kinds\s*=\s*([\w,\s]+)", constraint_match.group(1))
            if m:
                requested = [k.strip() for k in m.group(1).split(",") if k.strip()]
                kinds = [k for k in requested if k in KINDS] or kinds

        rng = rng_from(stable_hash("sqlgen:" + prompt))
        queries: List[str] = []
        for i in range(count):
            kind = kinds[i % len(kinds)]
            sql = self._generate(kind, tables, rng)
            if sql is None:
                sql = self._generate("simple", tables, rng)
            queries.append(sql or "SELECT 1")
        answer = ";\n".join(queries) + ";"

        difficulty = min(0.9, 0.28 + 0.05 * sum(k in ("subquery", "equivalent_pair") for k in kinds))
        wrongs = self._corruptions(queries)
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"count": count, "kinds": kinds},
        )

    # ------------------------------------------------------------ generators

    def _generate(self, kind: str, tables: Dict[str, List[Tuple[str, SQLType]]], rng) -> Optional[str]:
        names = sorted(tables)
        table = names[int(rng.integers(0, len(names)))]
        columns = tables[table]
        numeric = _numeric_columns(columns)
        if kind == "simple":
            col = columns[int(rng.integers(0, len(columns)))][0]
            if numeric:
                ncol = numeric[int(rng.integers(0, len(numeric)))]
                bound = int(rng.integers(1, 1000))
                return f"SELECT {col} FROM {table} WHERE {ncol} > {bound}"
            return f"SELECT {col} FROM {table}"
        if kind == "aggregate":
            if not numeric:
                return None
            ncol = numeric[int(rng.integers(0, len(numeric)))]
            group_candidates = _text_columns(columns)
            agg = ["COUNT", "SUM", "AVG", "MIN", "MAX"][int(rng.integers(0, 5))]
            if group_candidates:
                gcol = group_candidates[int(rng.integers(0, len(group_candidates)))]
                return (
                    f"SELECT {gcol}, {agg}({ncol}) FROM {table} GROUP BY {gcol}"
                )
            return f"SELECT {agg}({ncol}) FROM {table}"
        if kind == "join":
            pairs = _join_pairs(tables)
            if not pairs:
                return None
            left, right, key = pairs[int(rng.integers(0, len(pairs)))]
            lcol = tables[left][1][0] if len(tables[left]) > 1 else tables[left][0][0]
            rcol = tables[right][1][0] if len(tables[right]) > 1 else tables[right][0][0]
            return (
                f"SELECT a.{lcol}, b.{rcol} FROM {left} a "
                f"JOIN {right} b ON a.{key} = b.{key}"
            )
        if kind == "subquery":
            pairs = _join_pairs(tables)
            if not pairs:
                return None
            left, right, key = pairs[int(rng.integers(0, len(pairs)))]
            rnumeric = _numeric_columns(tables[right])
            rcol = [n for n in rnumeric if n != key]
            out = tables[right][1][0] if len(tables[right]) > 1 else tables[right][0][0]
            if rcol:
                pick = rcol[int(rng.integers(0, len(rcol)))]
                return (
                    f"SELECT {out} FROM {right} WHERE {key} IN "
                    f"(SELECT {key} FROM {left}) AND {pick} > "
                    f"(SELECT AVG({pick}) FROM {right})"
                )
            return (
                f"SELECT {out} FROM {right} WHERE {key} IN (SELECT {key} FROM {left})"
            )
        if kind == "equivalent_pair":
            if not numeric:
                return None
            ncol = numeric[int(rng.integers(0, len(numeric)))]
            col = columns[0][0]
            bound = int(rng.integers(1, 1000))
            q1 = f"SELECT {col} FROM {table} WHERE {ncol} > {bound}"
            q2 = f"SELECT {col} FROM {table} WHERE NOT ({ncol} <= {bound}) AND {ncol} IS NOT NULL"
            return f"{q1};\n{q2}"
        return None

    def _corruptions(self, queries: List[str]) -> List[str]:
        """Broken variants: syntax error, unknown column, dangling join."""
        base = ";\n".join(queries)
        wrongs = [
            base.replace("SELECT", "SELCT", 1),  # syntax error
            base.replace("FROM", "FROM missing_table --", 1),  # unknown table
        ]
        if " > " in base:
            wrongs.append(base.replace(" > ", " >> ", 1))
        return wrongs
