"""Column pattern mining engine (Section II-B3).

Implements the paper's pattern language: values are abstracted into token
classes — ``<letter>{n}``, ``<digit>{n}`` and literal separators — and the
engine mines the *tightest* pattern consistent with all sampled values,
preferring literal tokens when a token is constant across the column (the
paper's "Aug <digit>{2} 2023" beats "<letter>{3} <digit>{2} <digit>{4}"
example). The mining algorithm itself is real; see
:mod:`repro.apps.transform.columns` for the non-LLM API to the same code.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.llm.engines.base import Engine, EngineResult, TaskContext, count_examples

_INSTRUCTION_RE = re.compile(r"(?i)mine the pattern of the following column values")
_VALUES_RE = re.compile(r"(?im)^\s*values\s*:\s*(.+)$")

_TOKEN_SPLIT_RE = re.compile(r"[A-Za-z]+|[0-9]+|[^A-Za-z0-9]")


def tokenize_value(value: str) -> List[str]:
    """Split a value into letter runs, digit runs and single separators."""
    return _TOKEN_SPLIT_RE.findall(value)


def _token_class(token: str) -> Tuple[str, int]:
    # ASCII-only classes: the tokenizer splits on [A-Za-z]/[0-9], so a
    # non-ASCII letter (e.g. 'µ') arrives as a separator token and must be
    # classified 'literal' here too, or mining and matching disagree.
    if token.isascii() and token.isalpha():
        return "letter", len(token)
    if token.isascii() and token.isdigit():
        return "digit", len(token)
    return "literal", len(token)


def mine_pattern(values: List[str]) -> Optional[str]:
    """Mine the tightest shared pattern, or None when shapes disagree.

    For each token position: if all values share the identical literal
    token, emit it verbatim (tighter); otherwise emit ``<class>{len}`` when
    class and length agree, ``<class>+`` when only the class agrees.
    """
    token_lists = [tokenize_value(v) for v in values if v]
    if not token_lists:
        return None
    length = len(token_lists[0])
    if any(len(tl) != length for tl in token_lists):
        return None
    pieces: List[str] = []
    for position in range(length):
        tokens = [tl[position] for tl in token_lists]
        if all(t == tokens[0] for t in tokens):
            pieces.append(tokens[0])
            continue
        classes = {_token_class(t)[0] for t in tokens}
        if len(classes) != 1:
            return None
        cls = classes.pop()
        if cls == "literal":
            # Differing separator characters have no abstraction in the
            # pattern language; the column has no common pattern.
            return None
        lengths = {len(t) for t in tokens}
        if len(lengths) == 1:
            pieces.append(f"<{cls}>{{{lengths.pop()}}}")
        else:
            pieces.append(f"<{cls}>+")
    return "".join(pieces)


def pattern_matches(pattern: str, value: str) -> bool:
    """Check a value against a mined pattern (for data-quality validation)."""
    regex_parts: List[str] = []
    piece_re = re.compile(r"<(letter|digit)>(?:\{(\d+)\}|(\+))")
    pos = 0
    while pos < len(pattern):
        m = piece_re.match(pattern, pos)
        if m:
            cls = "[A-Za-z]" if m.group(1) == "letter" else "[0-9]"
            if m.group(2):
                regex_parts.append(f"{cls}{{{m.group(2)}}}")
            else:
                regex_parts.append(f"{cls}+")
            pos = m.end()
        else:
            regex_parts.append(re.escape(pattern[pos]))
            pos += 1
    return re.match("^" + "".join(regex_parts) + "$", value) is not None


def _loosen(pattern: str) -> str:
    """Produce a looser (still valid-looking but less useful) pattern."""
    return re.sub(r"\{\d+\}", "+", pattern)


class PatternMineEngine(Engine):
    """Mines the tightest token-class pattern for a value sample."""

    name = "pattern_mine"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        if _INSTRUCTION_RE.search(prompt) is None:
            return None
        values_match = None
        for values_match in _VALUES_RE.finditer(prompt):
            pass
        if values_match is None:
            return None
        values = [v.strip() for v in values_match.group(1).split("||") if v.strip()]
        if not values:
            return None
        pattern = mine_pattern(values)
        if pattern is None:
            answer = "no common pattern"
            wrongs = ["<letter>+"]
            difficulty = 0.5
        else:
            answer = pattern
            loose = _loosen(pattern)
            fully_abstract = mine_pattern([re.sub(r"[A-Za-z]", "x", v) for v in values]) or "<letter>+"
            wrongs = [w for w in (loose, fully_abstract) if w != pattern] or ["<letter>+"]
            # Columns with many distinct token shapes are harder.
            difficulty = min(0.85, 0.25 + 0.04 * pattern.count("<"))
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"values": len(values)},
        )
