"""Entity resolution and schema matching engines (Section II-C1).

The entity-match engine implements the paper's canonical prompt — "Are the
following two entity descriptions the same real-world entity?" — with a
real matcher: normalized token/edit similarity over the two serialized
records. Difficulty is the proximity to the decision boundary, so borderline
pairs are exactly the ones weak models get wrong.
"""

from __future__ import annotations

import re
from typing import Optional

from repro._util import jaccard, levenshtein_ratio, normalize_text, words
from repro.llm.engines.base import (
    Engine,
    EngineResult,
    TaskContext,
    count_examples,
    difficulty_jitter,
)

_ENTITY_RE = re.compile(
    r"(?is)entity\s*a\s*:\s*(.+?)\n\s*entity\s*b\s*:\s*(.+?)(?:\n\s*\n|\n\s*answer|\Z)"
)
_COLUMN_RE = re.compile(
    r"(?is)column\s*a\s*\(([^)]*)\)\s*:\s*(.+?)\n\s*column\s*b\s*\(([^)]*)\)\s*:\s*(.+?)(?:\n\s*\n|\n\s*answer|\Z)"
)

_ABBREVIATIONS = {
    "st": "street", "rd": "road", "ave": "avenue", "dr": "drive",
    "inc": "incorporated", "corp": "corporation", "co": "company",
    "intl": "international", "dept": "department", "univ": "university",
    "dr.": "doctor", "mt": "mount",
}


def _expand(text: str) -> str:
    out = []
    for token in words(normalize_text(text)):
        out.append(_ABBREVIATIONS.get(token, token))
    return " ".join(out)


def record_similarity(a: str, b: str) -> float:
    """Blend of token Jaccard and edit similarity on normalized text."""
    na, nb = _expand(a), _expand(b)
    return 0.6 * jaccard(words(na), words(nb)) + 0.4 * levenshtein_ratio(na, nb)


class EntityMatchEngine(Engine):
    """Answers "same real-world entity?" prompts with yes/no."""

    name = "entity_match"
    threshold = 0.52

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        if "same real-world entity" not in prompt.lower():
            return None
        m = _ENTITY_RE.search(prompt)
        if m is None:
            return None
        a, b = m.group(1).strip(), m.group(2).strip()
        sim = record_similarity(a, b)
        is_match = sim >= self.threshold
        answer = "yes" if is_match else "no"
        # Borderline pairs are hard; clear pairs are easy.
        boundary_distance = abs(sim - self.threshold)
        difficulty = max(0.08, min(0.9, 0.78 - 1.6 * boundary_distance))
        difficulty = max(0.05, min(0.95, difficulty + difficulty_jitter(a + b, 0.04)))
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=["no" if is_match else "yes"],
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"similarity": round(sim, 4)},
        )


class SchemaMatchEngine(Engine):
    """Answers "same attribute?" prompts for column pairs.

    Uses both the column names and sampled values: name similarity (with
    abbreviation expansion) plus value-overlap, mirroring classical schema
    matchers the LLM is standing in for.
    """

    name = "schema_match"
    threshold = 0.45

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        if "same attribute" not in prompt.lower():
            return None
        m = _COLUMN_RE.search(prompt)
        if m is None:
            return None
        name_a, values_a, name_b, values_b = (g.strip() for g in m.groups())
        # Column names use snake_case; split it before comparing.
        name_a = name_a.replace("_", " ")
        name_b = name_b.replace("_", " ")
        name_sim = levenshtein_ratio(_expand(name_a), _expand(name_b))
        # Token containment: "phone" vs "phone number" should score high.
        tokens_name_a = set(words(_expand(name_a)))
        tokens_name_b = set(words(_expand(name_b)))
        if tokens_name_a and tokens_name_b and (
            tokens_name_a <= tokens_name_b or tokens_name_b <= tokens_name_a
        ):
            name_sim = max(name_sim, 0.9)
        tokens_a = [v.strip().lower() for v in values_a.split("||") if v.strip()]
        tokens_b = [v.strip().lower() for v in values_b.split("||") if v.strip()]
        value_sim = jaccard(tokens_a, tokens_b)
        sim = 0.55 * name_sim + 0.45 * value_sim
        is_match = sim >= self.threshold
        boundary_distance = abs(sim - self.threshold)
        difficulty = max(0.08, min(0.9, 0.72 - 1.5 * boundary_distance))
        return EngineResult(
            answer="yes" if is_match else "no",
            difficulty=difficulty,
            wrong_answers=["no" if is_match else "yes"],
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"similarity": round(sim, 4)},
        )
