"""Semi-structured → relational extraction engine (Fig 4 scenario).

Given a prompt containing a JSON array or simple XML document and the
instruction to "extract a relational table", the engine genuinely parses the
document and emits the table in a canonical pipe-separated format:

    col_a | col_b
    1 | x
    2 | y

Corrupted outputs (what weak models return) drop a column or garble a value,
so the cell-level F1 metric in the Fig 4 bench degrades smoothly with model
capability.
"""

from __future__ import annotations

import json
import re
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

from repro.llm.engines.base import Engine, EngineResult, TaskContext, count_examples

_INSTRUCTION_RE = re.compile(r"(?i)extract (?:a |the )?relational table")
_JSON_BLOCK_RE = re.compile(r"(\[\s*\{.*\}\s*\])", re.S)
_XML_BLOCK_RE = re.compile(r"(<\?xml.*?>\s*<(\w+)[\s>].*</\2>|<(\w+)[\s>].*</\3>)", re.S)


def render_table(columns: List[str], rows: List[List[object]]) -> str:
    """Canonical pipe-separated rendering used by this engine and its evals."""
    lines = [" | ".join(columns)]
    for row in rows:
        lines.append(" | ".join("" if v is None else str(v) for v in row))
    return "\n".join(lines)


def parse_rendered_table(text: str) -> Tuple[List[str], List[List[str]]]:
    """Inverse of :func:`render_table` (tolerates surrounding prose)."""
    lines = [ln for ln in text.strip().splitlines() if "|" in ln]
    if not lines:
        return [], []
    columns = [c.strip() for c in lines[0].split("|")]
    rows = [[c.strip() for c in ln.split("|")] for ln in lines[1:]]
    return columns, rows


def _flatten(record: Dict[str, object], prefix: str = "") -> Dict[str, object]:
    flat: Dict[str, object] = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}_"))
        elif isinstance(value, list):
            flat[name] = "; ".join(str(v) for v in value)
        else:
            flat[name] = value
    return flat


def _records_to_table(records: List[Dict[str, object]]) -> Tuple[List[str], List[List[object]]]:
    flat_records = [_flatten(r) for r in records]
    columns: List[str] = []
    for record in flat_records:
        for key in record:
            if key not in columns:
                columns.append(key)
    rows = [[record.get(c) for c in columns] for record in flat_records]
    return columns, rows


def _parse_xml_records(xml_text: str) -> Optional[List[Dict[str, object]]]:
    try:
        root = ET.fromstring(xml_text.strip())
    except ET.ParseError:
        return None
    children = list(root)
    if not children:
        return None
    records = []
    for child in children:
        record: Dict[str, object] = dict(child.attrib)
        for leaf in child:
            record[leaf.tag] = (leaf.text or "").strip()
        if child.text and child.text.strip() and not list(child):
            record["text"] = child.text.strip()
        records.append(record)
    return records if records else None


class TableExtractEngine(Engine):
    """Parses JSON/XML blocks out of the prompt into a relational table."""

    name = "table_extract"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        if _INSTRUCTION_RE.search(prompt) is None:
            return None
        records = self._find_records(prompt)
        if not records:
            return None
        columns, rows = _records_to_table(records)
        answer = render_table(columns, rows)
        wrongs = self._corruptions(columns, rows)
        # Wider/nested documents are harder.
        difficulty = min(0.9, 0.30 + 0.03 * max(0, len(columns) - 3) + 0.01 * max(0, len(rows) - 5))
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"columns": len(columns), "rows": len(rows)},
        )

    def _find_records(self, prompt: str) -> Optional[List[Dict[str, object]]]:
        json_match = _JSON_BLOCK_RE.search(prompt)
        if json_match:
            try:
                data = json.loads(json_match.group(1))
            except json.JSONDecodeError:
                data = None
            if isinstance(data, list) and data and all(isinstance(r, dict) for r in data):
                return data
        xml_match = _XML_BLOCK_RE.search(prompt)
        if xml_match:
            return _parse_xml_records(xml_match.group(1))
        return None

    def _corruptions(self, columns: List[str], rows: List[List[object]]) -> List[str]:
        wrongs = []
        if len(columns) > 1:
            # Dropped last column.
            wrongs.append(render_table(columns[:-1], [r[:-1] for r in rows]))
        if rows:
            # Dropped half the rows.
            wrongs.append(render_table(columns, rows[: max(1, len(rows) // 2)]))
        # Shuffled header names (off-by-one rename).
        if len(columns) > 1:
            renamed = columns[1:] + columns[:1]
            wrongs.append(render_table(renamed, rows))
        return wrongs or [render_table(columns, [])]
