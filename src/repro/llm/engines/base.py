"""Engine protocol and shared prompt-parsing helpers."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING  # noqa: F401 (Tuple in annotations)

from repro._util import stable_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.knowledge import KnowledgeBase


@dataclass
class TaskContext:
    """Everything an engine may consult besides the prompt text."""

    knowledge: "KnowledgeBase"
    model_name: str


@dataclass
class EngineResult:
    """What an engine derived from one prompt.

    ``answer`` is the engine's genuinely-derived correct output. The client
    may replace it with one of ``wrong_answers`` (or numeric noise when
    ``numeric`` is set) according to the capability model.
    """

    answer: str
    difficulty: float
    wrong_answers: List[str] = field(default_factory=list)
    engine: str = "generic"
    numeric: bool = False
    n_examples: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)


class Engine:
    """Base class: subclasses implement :meth:`try_solve`."""

    name = "generic"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        """Return a result if this engine recognizes the prompt, else None."""
        raise NotImplementedError


def difficulty_jitter(prompt: str, spread: float = 0.08) -> float:
    """Deterministic per-prompt difficulty jitter in [-spread, +spread]."""
    h = stable_hash("difficulty:" + prompt)
    return (h % 10_000) / 10_000.0 * 2 * spread - spread


_EXAMPLE_RE = re.compile(r"(?im)^\s*(?:example\b|Q\s*\d*\s*:|###\s*example)")

_QA_EXAMPLE_PAIR_RE = re.compile(
    r"(?im)^\s*example\s*\d*\s*:\s*question:\s*(.+?)\s*answer:\s*(.+?)\s*$"
)


def count_examples(prompt: str) -> int:
    """Count few-shot example markers in a prompt (for the ICL bonus)."""
    return len(_EXAMPLE_RE.findall(prompt))


def parse_qa_example_pairs(prompt: str) -> List[tuple]:
    """Extract (question, answer) pairs from qa_prompt-style example lines."""
    return [(m.group(1).strip(), m.group(2).strip()) for m in _QA_EXAMPLE_PAIR_RE.finditer(prompt)]


def last_line_question(prompt: str) -> str:
    """The final non-empty line of a prompt — where the actual query lives
    in the few-shot templates used throughout the library."""
    lines = [ln.strip() for ln in prompt.strip().splitlines() if ln.strip()]
    return lines[-1] if lines else ""


class GenericEngine(Engine):
    """Fallback when no specialized engine matches: a bland completion.

    Kept honest: it never pretends to know task-specific answers; its output
    is a deterministic acknowledgment, and its difficulty is high so weak
    models frequently return the alternative (a refusal)."""

    name = "generic"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        head = " ".join(prompt.split()[:12])
        answer = f"Acknowledged: {head}"
        return EngineResult(
            answer=answer,
            difficulty=0.5 + difficulty_jitter(prompt, 0.05),
            wrong_answers=["I am not able to help with that request."],
            engine=self.name,
        )


def default_engines() -> List[Engine]:
    """The standard engine chain, most-specific first."""
    # Imported here to avoid circular imports at module load.
    from repro.llm.engines.classify import ColumnTypeEngine, LabelInferEngine
    from repro.llm.engines.codegen import CodegenEngine
    from repro.llm.engines.generate import SQLGenEngine
    from repro.llm.engines.match import EntityMatchEngine, SchemaMatchEngine
    from repro.llm.engines.nl2sql import NL2SQLEngine
    from repro.llm.engines.patterns import PatternMineEngine
    from repro.llm.engines.qa import QAEngine
    from repro.llm.engines.regress import ValuePredictEngine
    from repro.llm.engines.semantic_ops import FieldExtractEngine, SemanticPredicateEngine
    from repro.llm.engines.summarize import SummarizeEngine
    from repro.llm.engines.transform import TableExtractEngine

    return [
        NL2SQLEngine(),
        SQLGenEngine(),
        EntityMatchEngine(),
        SchemaMatchEngine(),
        ColumnTypeEngine(),
        LabelInferEngine(),
        SemanticPredicateEngine(),
        FieldExtractEngine(),
        ValuePredictEngine(),
        TableExtractEngine(),
        PatternMineEngine(),
        CodegenEngine(),
        SummarizeEngine(),
        QAEngine(),
        GenericEngine(),
    ]
