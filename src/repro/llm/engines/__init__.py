"""Task engines: the deterministic solvers behind the simulated LLM.

Each engine recognizes one family of prompts (the router tries them in
order) and *derives* the correct answer from the prompt content — parsing
questions, reading schemas, traversing the knowledge base, fitting few-shot
examples. The capability model in :mod:`repro.llm.client` then decides
whether the simulated model actually returns that correct answer.
"""

from repro.llm.engines.base import Engine, EngineResult, TaskContext, default_engines
from repro.llm.engines.classify import ColumnTypeEngine, LabelInferEngine
from repro.llm.engines.codegen import CodegenEngine
from repro.llm.engines.generate import SQLGenEngine
from repro.llm.engines.match import EntityMatchEngine, SchemaMatchEngine
from repro.llm.engines.nl2sql import NL2SQLEngine
from repro.llm.engines.patterns import PatternMineEngine
from repro.llm.engines.qa import QAEngine
from repro.llm.engines.regress import ValuePredictEngine
from repro.llm.engines.summarize import SummarizeEngine
from repro.llm.engines.transform import TableExtractEngine

__all__ = [
    "CodegenEngine",
    "ColumnTypeEngine",
    "Engine",
    "EngineResult",
    "EntityMatchEngine",
    "LabelInferEngine",
    "NL2SQLEngine",
    "PatternMineEngine",
    "QAEngine",
    "SQLGenEngine",
    "SchemaMatchEngine",
    "SummarizeEngine",
    "TableExtractEngine",
    "TaskContext",
    "ValuePredictEngine",
    "default_engines",
]
