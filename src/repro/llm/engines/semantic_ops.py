"""Engines backing the SQL semantic operators (SEMANTIC_FILTER / LLM_EXTRACT).

``repro.sqldb.semantic`` renders semantic-operator prompts from fixed
templates; these engines recognize those templates and derive genuine
answers so the simulated model behaves like an LLM predicate, not an
oracle: borderline predicates are *hard* (difficulty tracks the decision
boundary), and the capability model can still flip answers for weak
models. MATCHES(...) and LLM_CLASSIFY(...) reuse the existing
:class:`~repro.llm.engines.match.EntityMatchEngine` and
:class:`~repro.llm.engines.classify.ColumnTypeEngine` prompt contracts.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro._util import normalize_text, words
from repro.llm.engines.base import (
    Engine,
    EngineResult,
    TaskContext,
    count_examples,
    difficulty_jitter,
)

_FILTER_RE = re.compile(
    r"(?is)predicate\s*:\s*(.+?)\n\s*value\s*:\s*(.+?)(?:\n\s*answer|\Z)"
)
_EXTRACT_RE = re.compile(
    r"(?is)extract the\s+(.+?)\s+from the record.*?\n\s*record\s*:\s*(.+?)(?:\n\s*answer|\Z)"
)

# Instruction glue that carries no matching signal ("mentions a refund"
# should reduce to the content token "refund").
_PREDICATE_STOPWORDS = frozenset(
    """
    a an the is are was were has have had of with that this to in on for it
    its about mentions mention mentioned contains contain containing says
    said talks talk talking describes describe describing refers refer
    referring includes include including involves involve involving being
    any some there
    """.split()
)

_NEGATION_TOKENS = frozenset({"not", "no", "never", "without", "lacks", "lacking"})

_YEAR_RE = re.compile(r"\b(1[89]\d{2}|20\d{2})\b")
_EMAIL_RE = re.compile(r"\b[\w.+-]+@[\w-]+\.[\w.]+\b")
_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?")


def _content_tokens(predicate: str) -> List[str]:
    return [
        token
        for token in words(normalize_text(predicate))
        if token not in _PREDICATE_STOPWORDS and token not in _NEGATION_TOKENS
    ]


def predicate_coverage(predicate: str, value: str) -> float:
    """Fraction of the predicate's content tokens present in the value.

    Token presence is exact, or by substring for tokens of length >= 4
    ("ship" covers "shipping"). 1.0 when the predicate has no content
    tokens (a vacuous predicate is satisfied by anything).
    """
    content = _content_tokens(predicate)
    if not content:
        return 1.0
    value_tokens = set(words(normalize_text(value)))
    value_text = normalize_text(value)
    hits = 0
    for token in content:
        if token in value_tokens or (len(token) >= 4 and token in value_text):
            hits += 1
    return hits / len(content)


class SemanticPredicateEngine(Engine):
    """Answers SEMANTIC_FILTER prompts ("does the value satisfy the
    predicate?") with yes/no via content-token coverage."""

    name = "semantic_predicate"
    threshold = 0.5

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        if "satisfies the predicate" not in prompt.lower():
            return None
        m = _FILTER_RE.search(prompt)
        if m is None:
            return None
        predicate, value = m.group(1).strip(), m.group(2).strip()
        coverage = predicate_coverage(predicate, value)
        negated = any(t in _NEGATION_TOKENS for t in words(normalize_text(predicate)))
        satisfied = coverage >= self.threshold
        if negated:
            satisfied = not satisfied
        answer = "yes" if satisfied else "no"
        # Borderline coverage is hard, clear-cut coverage is easy.
        boundary_distance = abs(coverage - self.threshold)
        difficulty = max(0.08, min(0.9, 0.7 - 1.4 * boundary_distance))
        difficulty = max(
            0.05, min(0.95, difficulty + difficulty_jitter(predicate + value, 0.04))
        )
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=["no" if satisfied else "yes"],
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"coverage": round(coverage, 4)},
        )


class FieldExtractEngine(Engine):
    """Answers LLM_EXTRACT prompts: pull one named field out of a record.

    Understands ``key: value; key: value`` serializations, then falls back
    to shape patterns (years, emails, numbers). Answers "unknown" when the
    field genuinely is not there — the honest LLM behaviour the bit-
    equivalence contract needs to be deterministic about.
    """

    name = "field_extract"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        if "from the record" not in prompt.lower():
            return None
        m = _EXTRACT_RE.search(prompt)
        if m is None:
            return None
        target = normalize_text(m.group(1)).replace("_", " ").strip(" '\"")
        record = m.group(2).strip()
        pairs = self._parse_pairs(record)
        answer = None
        for key, value in pairs:
            if key == target or target in key or key in target:
                answer = value
                break
        if answer is None:
            answer = self._shape_fallback(target, record)
        wrongs = [v for _k, v in pairs if v != answer][:3] or ["unknown"]
        # More structure in the record makes extraction easier.
        difficulty = 0.38 - 0.04 * len(pairs)
        difficulty = max(0.05, min(0.9, difficulty + difficulty_jitter(target + record)))
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"target": target, "pairs": len(pairs)},
        )

    @staticmethod
    def _parse_pairs(record: str) -> List[tuple]:
        pairs = []
        for piece in re.split(r"[;|]", record):
            if ":" not in piece:
                continue
            key, value = piece.split(":", 1)
            key = normalize_text(key).replace("_", " ")
            value = value.strip()
            if key and value:
                pairs.append((key, value))
        return pairs

    @staticmethod
    def _shape_fallback(target: str, record: str) -> str:
        if "year" in target or "date" in target:
            m = _YEAR_RE.search(record)
            if m:
                return m.group(1)
        if "email" in target:
            m = _EMAIL_RE.search(record)
            if m:
                return m.group(0)
        if any(t in target for t in ("number", "price", "amount", "rating", "stars", "count")):
            m = _NUMBER_RE.search(record)
            if m:
                return m.group(0)
        return "unknown"
