"""Code synthesis engine: operator programs and data-prep snippets.

Two prompt families (Sections II-B2 and II-B4):

* "Synthesize the operator sequence to relationalize the following table"
  — runs the real program synthesis from :mod:`repro.tablekit.synthesis`
  on the grid rendered in the prompt and returns the textual program.
* "Write Python code for the data preparation operation: <name>" — returns
  a snippet from a curated library (what the paper means by helping
  non-technical experts synthesize per-operation code).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.llm.engines.base import Engine, EngineResult, TaskContext, count_examples
from repro.tablekit.grid import Grid
from repro.tablekit.synthesis import program_to_text, synthesize_program

_SYNTH_RE = re.compile(r"(?i)synthesize the operator sequence")
_SNIPPET_RE = re.compile(r"(?i)write python code for the data preparation operation\s*:\s*([\w ]+)")
_GRID_RE = re.compile(r"(?is)table\s*:\s*\n(.+?)(?:\n\s*\n|\Z)")
_RECOMMEND_RE = re.compile(
    r"(?i)recommend a data preparation pipeline for a dataset with the following profile\s*:\s*(.+)"
)


def recommend_ops_from_profile(profile: dict) -> list:
    """Canonical dataset-profile → candidate-operations mapping.

    Shared by the LLM engine (as the derived correct answer) and the direct
    :mod:`repro.apps.transform.pipeline` API, so both paths agree."""
    ops = []
    if profile.get("has_missing"):
        ops.append("impute_mean")
    if profile.get("skewed"):
        ops.append("log_transform")
    if profile.get("outliers"):
        ops.append("clip_outliers")
    if profile.get("scale_spread"):
        ops.extend(["standardize", "normalize"])
    if not ops:
        ops.append("standardize")
    return ops

SNIPPET_LIBRARY = {
    "normalize": (
        "def normalize(values):\n"
        "    lo, hi = min(values), max(values)\n"
        "    span = (hi - lo) or 1.0\n"
        "    return [(v - lo) / span for v in values]"
    ),
    "standardize": (
        "def standardize(values):\n"
        "    mean = sum(values) / len(values)\n"
        "    var = sum((v - mean) ** 2 for v in values) / len(values)\n"
        "    std = var ** 0.5 or 1.0\n"
        "    return [(v - mean) / std for v in values]"
    ),
    "impute_mean": (
        "def impute_mean(values):\n"
        "    known = [v for v in values if v is not None]\n"
        "    fill = sum(known) / len(known) if known else 0.0\n"
        "    return [fill if v is None else v for v in values]"
    ),
    "impute_mode": (
        "def impute_mode(values):\n"
        "    from collections import Counter\n"
        "    known = [v for v in values if v is not None]\n"
        "    fill = Counter(known).most_common(1)[0][0] if known else None\n"
        "    return [fill if v is None else v for v in values]"
    ),
    "drop_duplicates": (
        "def drop_duplicates(rows):\n"
        "    seen, out = set(), []\n"
        "    for row in rows:\n"
        "        key = tuple(row)\n"
        "        if key not in seen:\n"
        "            seen.add(key)\n"
        "            out.append(row)\n"
        "    return out"
    ),
    "one_hot": (
        "def one_hot(values):\n"
        "    categories = sorted(set(values))\n"
        "    return [[1 if v == c else 0 for c in categories] for v in values]"
    ),
    "feature_select_variance": (
        "def feature_select_variance(columns, threshold=0.0):\n"
        "    def variance(col):\n"
        "        mean = sum(col) / len(col)\n"
        "        return sum((v - mean) ** 2 for v in col) / len(col)\n"
        "    return [i for i, col in enumerate(columns) if variance(col) > threshold]"
    ),
    "clip_outliers": (
        "def clip_outliers(values, k=3.0):\n"
        "    mean = sum(values) / len(values)\n"
        "    std = (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5\n"
        "    lo, hi = mean - k * std, mean + k * std\n"
        "    return [min(max(v, lo), hi) for v in values]"
    ),
    "log_transform": (
        "def log_transform(values):\n"
        "    import math\n"
        "    return [math.log1p(max(v, 0.0)) for v in values]"
    ),
    "bin_numeric": (
        "def bin_numeric(values, n_bins=5):\n"
        "    lo, hi = min(values), max(values)\n"
        "    width = (hi - lo) / n_bins or 1.0\n"
        "    return [min(int((v - lo) / width), n_bins - 1) for v in values]"
    ),
}


class CodegenEngine(Engine):
    """Synthesizes operator programs and data-prep code snippets."""

    name = "codegen"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        snippet_match = _SNIPPET_RE.search(prompt)
        if snippet_match is not None:
            return self._snippet(snippet_match.group(1).strip().lower().replace(" ", "_"), prompt)
        if _SYNTH_RE.search(prompt) is not None:
            return self._synthesize(prompt)
        recommend_match = _RECOMMEND_RE.search(prompt)
        if recommend_match is not None:
            return self._recommend(recommend_match.group(1), prompt)
        return None

    def _recommend(self, profile_text: str, prompt: str) -> EngineResult:
        """Pipeline recommendation (II-B4): profile flags → operation list."""
        profile = {}
        for piece in profile_text.split(","):
            if "=" not in piece:
                continue
            key, value = piece.split("=", 1)
            profile[key.strip().lower()] = value.strip().lower() in ("yes", "true", "1")
        ops = recommend_ops_from_profile(profile)
        answer = ", ".join(ops)
        # Corruptions: an irrelevant op recommended / a needed op dropped.
        irrelevant = [op for op in SNIPPET_LIBRARY if op not in ops][:1]
        wrongs = [", ".join(ops + irrelevant)]
        if len(ops) > 1:
            wrongs.append(", ".join(ops[:-1]))
        return EngineResult(
            answer=answer,
            difficulty=0.3 + 0.04 * len(ops),
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"profile": profile},
        )

    def _snippet(self, operation: str, prompt: str) -> Optional[EngineResult]:
        if operation not in SNIPPET_LIBRARY:
            candidates = ", ".join(sorted(SNIPPET_LIBRARY))
            return EngineResult(
                answer=f"# unknown operation {operation!r}; known: {candidates}",
                difficulty=0.6,
                wrong_answers=["# TODO"],
                engine=self.name,
            )
        answer = SNIPPET_LIBRARY[operation]
        # Subtly broken variant (off-by-one / missing guard).
        broken = answer.replace("or 1.0", "").replace("max(v, 0.0)", "v")
        if broken == answer:
            broken = answer.replace("return", "return  # FIXME\n    return", 1)
        return EngineResult(
            answer=answer,
            difficulty=0.22,
            wrong_answers=[broken],
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"operation": operation},
        )

    def _synthesize(self, prompt: str) -> Optional[EngineResult]:
        grid_match = _GRID_RE.search(prompt)
        if grid_match is None:
            return None
        has_header = "has header: yes" in prompt.lower()
        grid = Grid.from_render(grid_match.group(1), has_header=has_header)
        program, _result, score = synthesize_program(grid)
        answer = program_to_text(program) or "promote_header"
        wrongs = []
        if program:
            # Truncated program and a spuriously transposed one.
            wrongs.append(program_to_text(program[:-1]) or "transpose")
            wrongs.append("transpose; " + program_to_text(program))
        else:
            wrongs.append("transpose")
        difficulty = min(0.9, 0.35 + 0.12 * len(program))
        return EngineResult(
            answer=answer,
            difficulty=difficulty,
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"program_length": len(program), "score": score},
        )
