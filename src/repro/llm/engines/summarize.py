"""Summarization engine: SQL→NL descriptions and row serialization.

Backs the table understanding application (Section II-C2): the paper's
example — SQL ``SELECT AVG(SALARY) FROM EMPLOYEE`` with result 500 becomes
"the average salary of all the employees in the EMPLOYEE table is 500" —
is generated here by template over the parsed SQL AST. Row serialization
("serialize the row into a natural language sentence") backs the missing-
label annotation flow (Section II-A2).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import SQLError
from repro.llm.engines.base import Engine, EngineResult, TaskContext, count_examples
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_statement

_SQL2NL_RE = re.compile(r"(?is)describe the following sql.*?sql\s*:\s*(.+?)\s*(?:result\s*:\s*(.+?))?\s*\Z")
_ROW_RE = re.compile(r"(?is)serialize the following row.*?table\s*:\s*(\w+).*?row\s*:\s*(.+?)\s*\Z")

_AGG_PHRASES = {
    "AVG": "the average {col}",
    "SUM": "the total {col}",
    "COUNT": "the number of rows",
    "MIN": "the minimum {col}",
    "MAX": "the maximum {col}",
}


def describe_sql(sql: str, result: Optional[str] = None) -> Optional[str]:
    """Template-based SQL→NL; returns None for unsupported shapes."""
    try:
        stmt = parse_statement(sql)
    except SQLError:
        return None
    if not isinstance(stmt, ast.Select) or stmt.source is None:
        return None
    if not isinstance(stmt.source, ast.TableName):
        return None
    table = stmt.source.name
    phrases: List[str] = []
    for item in stmt.items:
        expr = item.expr
        if isinstance(expr, ast.FuncCall) and expr.name in _AGG_PHRASES:
            if expr.args and isinstance(expr.args[0], ast.ColumnRef):
                col = expr.args[0].name.lower()
            else:
                col = "rows"
            phrases.append(_AGG_PHRASES[expr.name].format(col=col))
        elif isinstance(expr, ast.ColumnRef):
            phrases.append(f"the {expr.name.lower()}")
        elif isinstance(expr, ast.Star):
            phrases.append("all columns")
    if not phrases:
        return None
    subject = " and ".join(phrases)
    scope = f"of all the rows in the {table} table"
    condition = f" where {stmt.where}" if stmt.where is not None else ""
    if result is not None and result != "":
        return f"{subject} {scope}{condition} is {result}".strip()
    return f"this query computes {subject} {scope}{condition}".strip()


def serialize_row(table: str, row_text: str) -> str:
    """"attr: value; ..." → one NL sentence (the paper's serialization)."""
    pairs = []
    for piece in row_text.split(";"):
        if ":" not in piece:
            continue
        key, value = piece.split(":", 1)
        pairs.append((key.strip(), value.strip()))
    if not pairs:
        return f"a row of the {table} table"
    clauses = [f"the {k} is {v}" for k, v in pairs]
    return f"In the {table} table, " + ", and ".join(clauses) + "."


class SummarizeEngine(Engine):
    """SQL→NL description and row serialization prompts."""

    name = "summarize"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        m = _SQL2NL_RE.search(prompt)
        if m is not None:
            sql = m.group(1).strip().rstrip(";")
            result = m.group(2).strip() if m.group(2) else None
            answer = describe_sql(sql, result)
            if answer is None:
                return None
            wrongs = [
                answer.replace("average", "total").replace("minimum", "maximum"),
                f"this query reads the table",
            ]
            wrongs = [w for w in wrongs if w != answer]
            return EngineResult(
                answer=answer,
                difficulty=0.25,
                wrong_answers=wrongs or ["unable to describe the query"],
                engine=self.name,
                n_examples=count_examples(prompt),
            )
        m = _ROW_RE.search(prompt)
        if m is not None:
            answer = serialize_row(m.group(1), m.group(2))
            truncated = answer.split(", and ")[0] + "."
            return EngineResult(
                answer=answer,
                difficulty=0.15,
                wrong_answers=[truncated] if truncated != answer else ["(empty)"],
                engine=self.name,
                n_examples=count_examples(prompt),
            )
        return None
