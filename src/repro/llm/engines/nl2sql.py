"""NL2SQL engine: translates natural-language questions into SQL.

Covers the paper's running example domain (Section III-B1, Fig 7): stadiums,
concerts and sports meetings — including the exact compound query forms Q1-Q5
("... had concerts in 2014 or had sports meetings in 2015", "... but did not
have ...", superlatives). Domains are pluggable (:data:`DOMAINS`): a retail
customers/orders/returns domain ships alongside the stadium one, and new
domains register an :class:`NLDomain` spec rather than new parsing code.

Also handles the NL2Transaction scenario (Section II-B1): a sequence of
payment clauses becomes an atomic BEGIN/UPDATE.../COMMIT script.

Compound questions carry high difficulty (weak models garble them); the
decomposed atomic sub-questions are easy — the asymmetry behind Table II.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.llm.engines.base import (
    Engine,
    EngineResult,
    TaskContext,
    count_examples,
    difficulty_jitter,
)

# Difficulty anchors (calibrated against Table II; see DESIGN.md §2).
_ATOMIC = 0.60
_AGGREGATE = 0.62
_SUPERLATIVE = 0.70
_COMPOUND_BASE = 0.95
_TXN_BASE = 0.38

_QUESTION_LINE_RE = re.compile(r"(?im)^\s*(?:question|nl|translate)\s*:\s*(.+)$")
_TXN_LINE_RE = re.compile(r"(?im)^\s*scenario\s*:\s*(.+)$")
_PAY_RE = re.compile(r"(?i)([A-Z][\w ]*?) pays ([A-Z][\w ]*?) \$([0-9]+(?:\.[0-9]+)?)")

_LEADS = ("what are", "show", "list", "give me")


# --------------------------------------------------------------------------
# Domain registry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EventSpec:
    """One event family an entity can participate in."""

    phrase: str  # "concerts" — how questions name the event
    verb: str  # past-tense verb: "had" / "placed"
    verb_neg: str  # infinitive after "did not": "have" / "place"
    table: str  # relational table holding the events
    time_column: str = "year"


@dataclass(frozen=True)
class NLDomain:
    """Everything the parser needs to cover one question domain."""

    name: str
    entity_phrase: str  # "stadiums" — how questions name the entity
    entity_table: str  # "stadium"
    entity_key: str  # join key: "stadium_id"
    name_column: str  # projected column: "name"
    events: Tuple[EventSpec, ...]

    @property
    def entity_alias(self) -> str:
        return self.entity_table[0]

    def event_alias(self, event: EventSpec) -> str:
        alias = event.table[0]
        return alias if alias != self.entity_alias else "e"

    def event_by_phrase(self, phrase: str) -> Optional[EventSpec]:
        lowered = phrase.lower()
        for event in self.events:
            if event.phrase == lowered:
                return event
        return None

    def event_sql(self, event: EventSpec, year: str, superlative: bool) -> str:
        ea, alias = self.entity_alias, self.event_alias(event)
        base = (
            f"SELECT DISTINCT {ea}.{self.name_column} FROM {self.entity_table} {ea} "
            f"JOIN {event.table} {alias} ON {ea}.{self.entity_key} = {alias}.{self.entity_key} "
            f"WHERE {alias}.{event.time_column} = {year}"
        )
        if superlative:
            return (
                f"SELECT {ea}.{self.name_column} FROM {self.entity_table} {ea} "
                f"JOIN {event.table} {alias} ON {ea}.{self.entity_key} = {alias}.{self.entity_key} "
                f"WHERE {alias}.{event.time_column} = {year} "
                f"GROUP BY {ea}.{self.name_column} ORDER BY COUNT(*) DESC LIMIT 1"
            )
        return base

    def clause_pattern(self) -> "re.Pattern[str]":
        verbs = sorted({e.verb for e in self.events} | {e.verb_neg for e in self.events})
        phrases = sorted(e.phrase for e in self.events)
        return re.compile(
            r"(?i)(?:that\s+)?(?:" + "|".join(verbs) + r")\s+"
            r"(the most number of\s+)?(" + "|".join(re.escape(p) for p in phrases) + r")\s+"
            r"in\s+([0-9]{4})"
        )

    def prefix_pattern(self) -> "re.Pattern[str]":
        leads = "|".join(re.escape(lead) for lead in _LEADS)
        return re.compile(
            rf"(?i)^(?:{leads})\s+the names of {re.escape(self.entity_phrase)}\s+"
        )

    def connectors(self) -> List[Tuple[str, str, "EventSpec"]]:
        """(split token, set op, event-of-second-clause) candidates."""
        out = []
        for event in self.events:
            out.append((f" but did not {event.verb_neg} ", "EXCEPT", event))
            out.append((f" and {event.verb} ", "INTERSECT", event))
            out.append((f" or {event.verb} ", "UNION", event))
        return out


STADIUM_DOMAIN = NLDomain(
    name="stadium",
    entity_phrase="stadiums",
    entity_table="stadium",
    entity_key="stadium_id",
    name_column="name",
    events=(
        EventSpec(phrase="concerts", verb="had", verb_neg="have", table="concert"),
        EventSpec(phrase="sports meetings", verb="had", verb_neg="have", table="sports_meeting"),
    ),
)

RETAIL_DOMAIN = NLDomain(
    name="retail",
    entity_phrase="customers",
    entity_table="customer",
    entity_key="customer_id",
    name_column="name",
    events=(
        EventSpec(phrase="orders", verb="placed", verb_neg="place", table="orders"),
        EventSpec(phrase="returns", verb="filed", verb_neg="file", table="returns"),
    ),
)

DOMAINS: Tuple[NLDomain, ...] = (STADIUM_DOMAIN, RETAIL_DOMAIN)


class NL2SQLEngine(Engine):
    """Parses registered-domain NL questions into executable SQL."""

    name = "nl2sql"

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        txn = self._try_transaction(prompt)
        if txn is not None:
            return txn
        question = self._extract_question(prompt)
        if question is None:
            return None
        parsed = self._parse_question(question)
        if parsed is None:
            return None
        sql, difficulty, wrongs = parsed
        difficulty = min(0.95, max(0.05, difficulty + difficulty_jitter(question)))
        return EngineResult(
            answer=sql,
            difficulty=difficulty,
            wrong_answers=wrongs,
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"question": question},
        )

    def _extract_question(self, prompt: str) -> Optional[str]:
        match = None
        for match in _QUESTION_LINE_RE.finditer(prompt):
            pass  # keep the last occurrence — earlier ones are examples
        if match is not None:
            return match.group(1).strip()
        # Bare question prompts (no framing) still count if they look like
        # a registered domain.
        last = prompt.strip().splitlines()[-1].strip() if prompt.strip() else ""
        lowered = last.lower()
        if any(d.entity_table in lowered or d.entity_phrase in lowered for d in DOMAINS):
            return last
        return None

    # ---------------------------------------------------------------- parse

    def _parse_question(self, question: str) -> Optional[Tuple[str, float, List[str]]]:
        text = question.strip().rstrip("?").strip()
        for domain in DOMAINS:
            prefix = domain.prefix_pattern()
            stripped = prefix.sub("", text + " ").strip()
            if stripped != (text + " ").strip():
                result = self._parse_domain_question(domain, stripped)
                if result is not None:
                    return result
        return self._parse_non_name_question(text)

    def _parse_domain_question(
        self, domain: NLDomain, stripped: str
    ) -> Optional[Tuple[str, float, List[str]]]:
        # Compound splitting: EXCEPT first, then INTERSECT, then UNION.
        for splitter, set_op, _event in sorted(
            domain.connectors(), key=lambda c: ("EXCEPT", "INTERSECT", "UNION").index(c[1])
        ):
            idx = stripped.lower().find(splitter)
            if idx < 0:
                continue
            left_text = stripped[:idx]
            # Keep the (positive) verb on the right clause for re-parsing.
            verb = splitter.strip().split()[-1]
            right_event = _event
            right_text = f"{right_event.verb} " + stripped[idx + len(splitter):]
            left = self._parse_event_phrase(domain, left_text)
            right = self._parse_event_phrase(domain, right_text)
            if left is None or right is None:
                return None
            sql = f"{left} {set_op} {right}"
            difficulty = _COMPOUND_BASE
            wrongs = self._compound_corruptions(left, right, set_op)
            return sql, difficulty, wrongs

        event_sql = self._parse_event_phrase(domain, stripped)
        if event_sql is not None:
            superlative = "most number" in stripped
            difficulty = _SUPERLATIVE if superlative else _ATOMIC
            return event_sql, difficulty, self._atomic_corruptions(domain, event_sql)

        # Entity-attribute filters (stadium capacity / location).
        if domain is STADIUM_DOMAIN:
            return self._parse_stadium_filters(stripped)
        return None

    def _parse_event_phrase(self, domain: NLDomain, phrase: str) -> Optional[str]:
        m = domain.clause_pattern().search(phrase)
        if m is None:
            return None
        superlative = bool(m.group(1))
        event = domain.event_by_phrase(m.group(2))
        if event is None:
            return None
        return domain.event_sql(event, m.group(3), superlative)

    def _parse_stadium_filters(self, stripped: str) -> Optional[Tuple[str, float, List[str]]]:
        m = re.search(r"(?i)with a capacity (greater|less) than ([0-9]+)", stripped)
        if m:
            op = ">" if m.group(1).lower() == "greater" else "<"
            sql = f"SELECT name FROM stadium WHERE capacity {op} {m.group(2)}"
            flipped = "<" if op == ">" else ">"
            return sql, _ATOMIC, [
                f"SELECT name FROM stadium WHERE capacity {flipped} {m.group(2)}",
                f"SELECT name FROM stadium WHERE capacity {op}= {m.group(2)}",
            ]
        m = re.search(r"(?i)located in ([A-Za-z ]+)$", stripped)
        if m:
            loc = m.group(1).strip()
            sql = f"SELECT name FROM stadium WHERE location = '{loc}'"
            return sql, _ATOMIC, [
                f"SELECT name FROM stadium WHERE location <> '{loc}'",
                "SELECT name FROM stadium",
            ]
        return None

    def _parse_non_name_question(self, text: str) -> Optional[Tuple[str, float, List[str]]]:
        for domain in DOMAINS:
            phrases = "|".join(re.escape(e.phrase) for e in domain.events)
            m = re.search(rf"(?i)how many ({phrases}) were (?:held|placed|filed) in ([0-9]{{4}})", text)
            if m:
                event = domain.event_by_phrase(m.group(1))
                assert event is not None
                year = m.group(2)
                sql = f"SELECT COUNT(*) FROM {event.table} WHERE {event.time_column} = {year}"
                return sql, _AGGREGATE, [
                    f"SELECT COUNT(*) FROM {event.table} WHERE {event.time_column} = {int(year) - 1}",
                    f"SELECT COUNT(*) FROM {event.table}",
                ]
        m = re.search(r"(?i)what is the average capacity of stadiums in ([A-Za-z ]+)\b", text)
        if m:
            loc = m.group(1).strip().rstrip("?").strip()
            sql = f"SELECT AVG(capacity) FROM stadium WHERE location = '{loc}'"
            return sql, _AGGREGATE, [
                f"SELECT MAX(capacity) FROM stadium WHERE location = '{loc}'",
                "SELECT AVG(capacity) FROM stadium",
            ]
        if re.search(r"(?i)what is the total capacity of all stadiums", text):
            return (
                "SELECT SUM(capacity) FROM stadium",
                _AGGREGATE,
                ["SELECT AVG(capacity) FROM stadium", "SELECT COUNT(capacity) FROM stadium"],
            )
        return None

    # ----------------------------------------------------------- corruptions

    def _atomic_corruptions(self, domain: NLDomain, sql: str) -> List[str]:
        wrongs = []
        m = re.search(r"(year|month) = ([0-9]{4})", sql)
        if m:
            year = int(m.group(2))
            wrongs.append(sql.replace(f"{m.group(1)} = {year}", f"{m.group(1)} = {year - 1}"))
        tables = [e.table for e in domain.events]
        for i, table in enumerate(tables):
            other = tables[(i + 1) % len(tables)]
            if f"JOIN {table} " in sql and other != table:
                wrongs.append(sql.replace(f"JOIN {table} ", f"JOIN {other} "))
                break
        if "ORDER BY COUNT(*) DESC LIMIT 1" in sql:
            wrongs.append(sql.replace(" ORDER BY COUNT(*) DESC LIMIT 1", ""))
        return wrongs or [sql.replace("SELECT", "SELECT DISTINCT", 1)]

    def _compound_corruptions(self, left: str, right: str, set_op: str) -> List[str]:
        other_ops = [op for op in ("UNION", "INTERSECT", "EXCEPT") if op != set_op]
        wrongs = [f"{left} {op} {right}" for op in other_ops]
        wrongs.append(left)  # dropped second clause — a classic weak-model error
        return wrongs

    # ---------------------------------------------------------- transactions

    def _try_transaction(self, prompt: str) -> Optional[EngineResult]:
        m = _TXN_LINE_RE.search(prompt)
        if m is None:
            return None
        scenario = m.group(1).strip()
        payments = _PAY_RE.findall(scenario)
        if not payments:
            return None
        statements = ["BEGIN"]
        for payer, payee, amount in payments:
            payer, payee = payer.strip(), payee.strip()
            statements.append(
                f"UPDATE accounts SET balance = balance - {amount} WHERE owner = '{payer}'"
            )
            statements.append(
                f"UPDATE accounts SET balance = balance + {amount} WHERE owner = '{payee}'"
            )
        statements.append("COMMIT")
        sql = ";\n".join(statements) + ";"
        difficulty = min(0.9, _TXN_BASE + 0.12 * (len(payments) - 1) + difficulty_jitter(scenario))
        # Corruptions: unbalanced amounts / missing debit — integrity bugs
        # that the output validator (Section III-E) is designed to catch.
        bad_amount = sql.replace(f"- {payments[0][2]}", f"- {float(payments[0][2]) * 2:g}", 1)
        missing_debit = ";\n".join(s for s in statements if f"- {payments[0][2]}" not in s) + ";"
        no_txn = ";\n".join(statements[1:-1]) + ";"
        return EngineResult(
            answer=sql,
            difficulty=max(0.05, difficulty),
            wrong_answers=[bad_amount, missing_debit, no_txn],
            engine=self.name,
            n_examples=count_examples(prompt),
            metadata={"payments": len(payments)},
        )
