"""Multi-hop question answering over the knowledge base.

Recognizes the question templates produced by
:mod:`repro.datasets.hotpot` (and their decomposed sub-questions) and
answers them by *traversing* the knowledge base — one KB lookup per hop, the
way the dataset intends the reasoning to happen. Difficulty scales with the
number of hops, which is what makes weak models fail predominantly on
bridge questions (reproducing the Table I accuracy spread).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro._util import rng_from, stable_hash
from repro.llm.engines.base import (
    Engine,
    EngineResult,
    TaskContext,
    count_examples,
    difficulty_jitter,
    last_line_question,
)
from repro.llm.knowledge import KnowledgeBase

# Difficulty anchors per reasoning depth.
_ONE_HOP = 0.34
_TWO_HOP = 0.57
_COMPARISON = 0.50

_UNKNOWN = "unknown"


class QAEngine(Engine):
    """Answers entity questions; multi-hop bridge and comparison forms."""

    name = "qa"

    # (regex, handler-name, difficulty) — checked in order.
    _PATTERNS = [
        # Paraphrased forms (see repro.datasets.hotpot.paraphrase).
        (re.compile(r"the film starring (.+?) was directed by whom\?", re.I), "_film_director_of_actor", _TWO_HOP),
        (re.compile(r"the city where (.+?) was born is located in which country\?", re.I), "_country_of_birth", _TWO_HOP),
        (re.compile(r"the team that (.+?) plays for is based in which city\?", re.I), "_city_of_team", _TWO_HOP),
        (re.compile(r"which sport is played by the team that (.+?) plays for\?", re.I), "_sport_of_player", _TWO_HOP),
        (re.compile(r"between (.+?) and (.+?), who was born earlier\?", re.I), "_born_earlier", _COMPARISON),
        (re.compile(r"between (.+?) and (.+?), which film was released first\?", re.I), "_released_first", _COMPARISON),
        # Two-hop bridge questions.
        (re.compile(r"who directed the film that starred (.+?)\?", re.I), "_film_director_of_actor", _TWO_HOP),
        (re.compile(r"in which country is the city where (.+?) was born(?: located)?\?", re.I), "_country_of_birth", _TWO_HOP),
        (re.compile(r"in which city is the team that (.+?) plays for based\?", re.I), "_city_of_team", _TWO_HOP),
        (re.compile(r"what sport does the team that (.+?) plays for play\?", re.I), "_sport_of_player", _TWO_HOP),
        (re.compile(r"in which country is the team that (.+?) plays for based\?", re.I), "_country_of_team", 0.72),
        # Comparisons.
        (re.compile(r"who was born earlier, (.+?) or (.+?)\?", re.I), "_born_earlier", _COMPARISON),
        (re.compile(r"which film was released first, (.+?) or (.+?)\?", re.I), "_released_first", _COMPARISON),
        (re.compile(r"which city has a larger population, (.+?) or (.+?)\?", re.I), "_larger_city", _COMPARISON),
        # One-hop questions (decomposed sub-questions).
        (re.compile(r"which film starred (.+?)\?", re.I), "_film_of_actor", _ONE_HOP),
        (re.compile(r"who directed (.+?)\?", re.I), "_director_of_film", _ONE_HOP),
        (re.compile(r"in which city was (.+?) born\?", re.I), "_birth_city", _ONE_HOP),
        (re.compile(r"in which country is (.+?) located\?", re.I), "_country_of_city", _ONE_HOP),
        (re.compile(r"which team does (.+?) play for\?", re.I), "_team_of_player", _ONE_HOP),
        (re.compile(r"in which city is (.+?) based\?", re.I), "_city_of_team_direct", _ONE_HOP),
        (re.compile(r"what sport does (.+?) play\?", re.I), "_sport_of_team", _ONE_HOP),
        (re.compile(r"in which year was (.+?) born\?", re.I), "_birth_year", _ONE_HOP),
        (re.compile(r"in which year was (.+?) released\?", re.I), "_release_year", _ONE_HOP),
    ]

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        question = last_line_question(prompt)
        # Strip common QA framing.
        question = re.sub(r"(?i)^(question|q)\s*[:.]\s*", "", question).strip()
        for pattern, handler_name, base_difficulty in self._PATTERNS:
            match = pattern.search(question)
            if match is None:
                continue
            handler = getattr(self, handler_name)
            kb = context.knowledge
            answer, distractor_type = handler(kb, *[g.strip() for g in match.groups()])
            answer_text = str(answer) if answer is not None else _UNKNOWN
            wrongs = self._distractors(kb, answer_text, distractor_type, question)
            good_examples, bad_examples = self._assess_examples(prompt, kb)
            difficulty = base_difficulty + difficulty_jitter(question)
            # Misleading in-context examples actively hurt (the reason
            # prompt selection — Section III-A — matters downstream).
            difficulty += 0.05 * bad_examples
            difficulty = min(0.95, max(0.05, difficulty))
            return EngineResult(
                answer=answer_text,
                difficulty=difficulty,
                wrong_answers=wrongs,
                engine=self.name,
                n_examples=good_examples,
                metadata={"question": question, "bad_examples": bad_examples},
            )
        return None

    def _assess_examples(self, prompt: str, kb: KnowledgeBase):
        """Verify few-shot example pairs against the KB: the ICL bonus only
        counts examples whose stated answer is actually correct; examples
        with wrong answers are mislabeled context and count against."""
        from repro.llm.engines.base import parse_qa_example_pairs

        pairs = parse_qa_example_pairs(prompt)
        if not pairs:
            return count_examples(prompt), 0
        good = bad = 0
        for example_question, example_answer in pairs:
            derived = self.answer_only(example_question, kb)
            if derived is None:
                good += 1  # unverifiable examples get the benefit of doubt
            elif derived == example_answer:
                good += 1
            else:
                bad += 1
        return good, bad

    def answer_only(self, question: str, kb: KnowledgeBase) -> Optional[str]:
        """Derive just the answer for a question (no result envelope)."""
        question = question.strip()
        if not question.endswith("?"):
            question += "?"
        for pattern, handler_name, _difficulty in self._PATTERNS:
            match = pattern.search(question)
            if match is None:
                continue
            answer, _distractor_type = getattr(self, handler_name)(
                kb, *[g.strip() for g in match.groups()]
            )
            return str(answer) if answer is not None else _UNKNOWN
        return None

    # -- handlers: (kb, *groups) -> (answer, distractor entity type) -------

    def _film_of_actor(self, kb: KnowledgeBase, actor: str):
        films = kb.subjects_with("starred", actor)
        return (films[0] if films else None), "film"

    def _director_of_film(self, kb: KnowledgeBase, film: str):
        return kb.one(film, "directed_by"), "person"

    def _film_director_of_actor(self, kb: KnowledgeBase, actor: str):
        films = kb.subjects_with("starred", actor)
        if not films:
            return None, "person"
        return kb.one(films[0], "directed_by"), "person"

    def _birth_city(self, kb: KnowledgeBase, person: str):
        return kb.one(person, "born_in"), "city"

    def _birth_year(self, kb: KnowledgeBase, person: str):
        return kb.one(person, "born_year"), "year"

    def _release_year(self, kb: KnowledgeBase, film: str):
        return kb.one(film, "released_in"), "year"

    def _country_of_city(self, kb: KnowledgeBase, city: str):
        return kb.one(city, "located_in"), "country"

    def _country_of_birth(self, kb: KnowledgeBase, person: str):
        city = kb.one(person, "born_in")
        if city is None:
            return None, "country"
        return kb.one(str(city), "located_in"), "country"

    def _team_of_player(self, kb: KnowledgeBase, player: str):
        return kb.one(player, "plays_for"), "team"

    def _city_of_team_direct(self, kb: KnowledgeBase, team: str):
        return kb.one(team, "based_in"), "city"

    def _city_of_team(self, kb: KnowledgeBase, player: str):
        team = kb.one(player, "plays_for")
        if team is None:
            return None, "city"
        return kb.one(str(team), "based_in"), "city"

    def _country_of_team(self, kb: KnowledgeBase, player: str):
        team = kb.one(player, "plays_for")
        if team is None:
            return None, "country"
        city = kb.one(str(team), "based_in")
        if city is None:
            return None, "country"
        return kb.one(str(city), "located_in"), "country"

    def _sport_of_team(self, kb: KnowledgeBase, team: str):
        return kb.one(team, "plays_sport"), "sport"

    def _sport_of_player(self, kb: KnowledgeBase, player: str):
        team = kb.one(player, "plays_for")
        if team is None:
            return None, "sport"
        return kb.one(str(team), "plays_sport"), "sport"

    def _born_earlier(self, kb: KnowledgeBase, a: str, b: str):
        ya, yb = kb.one(a, "born_year"), kb.one(b, "born_year")
        if ya is None or yb is None:
            return None, "person"
        return (a if ya <= yb else b), "person"

    def _released_first(self, kb: KnowledgeBase, a: str, b: str):
        ya, yb = kb.one(a, "released_in"), kb.one(b, "released_in")
        if ya is None or yb is None:
            return None, "film"
        return (a if ya <= yb else b), "film"

    def _larger_city(self, kb: KnowledgeBase, a: str, b: str):
        pa, pb = kb.one(a, "population"), kb.one(b, "population")
        if pa is None or pb is None:
            return None, "city"
        return (a if pa >= pb else b), "city"

    # -- distractors --------------------------------------------------------

    _SPORTS = ["Basketball", "Football", "Baseball", "Hockey", "Tennis"]

    def _distractors(
        self, kb: KnowledgeBase, answer: str, entity_type: str, question: str
    ) -> List[str]:
        """Plausible wrong answers: same-type entities, deterministic pick."""
        rng = rng_from(stable_hash("distractor:" + question))
        if entity_type == "year":
            try:
                year = int(answer)
            except ValueError:
                year = 1980
            offsets = [int(rng.integers(1, 15)) for _ in range(3)]
            return [str(year - o) for o in offsets] or ["1970"]
        if entity_type == "sport":
            pool = [s for s in self._SPORTS if s != answer]
        else:
            pool = [e for e in kb.entities_of_type(entity_type) if e != answer]
        if not pool:
            return [_UNKNOWN]
        picks = rng.choice(len(pool), size=min(3, len(pool)), replace=False)
        return [pool[int(i)] for i in picks]
