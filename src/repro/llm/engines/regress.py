"""Numeric value prediction from few-shot examples (Fig 3 scenario).

The training-data generation application (Section II-A2) feeds the LLM
⟨query features, execution_time⟩ pairs and asks it to predict the time for
a new query. This engine implements that with distance-weighted k-NN over
the in-prompt examples, so prediction quality *really* improves with more
examples. The capability model corrupts numeric answers with multiplicative
noise instead of swapping in a discrete wrong answer.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.llm.engines.base import Engine, EngineResult, TaskContext, difficulty_jitter

_EXAMPLE_RE = re.compile(
    r"(?im)^\s*features\s*:\s*(.+?)\s*->\s*(?:execution_time|target|value)\s*:\s*([-0-9.eE]+)"
)
_QUERY_RE = re.compile(r"(?im)^\s*features\s*:\s*(.+?)\s*->\s*(?:execution_time|target|value)\s*:\s*\?\s*$")


def _parse_features(text: str) -> Dict[str, float]:
    features: Dict[str, float] = {}
    for piece in text.split(","):
        if "=" not in piece:
            continue
        key, value = piece.split("=", 1)
        try:
            features[key.strip()] = float(value.strip())
        except ValueError:
            continue
    return features


class ValuePredictEngine(Engine):
    """Distance-weighted k-NN regression over few-shot feature lines."""

    name = "value_predict"
    k = 4

    def try_solve(self, prompt: str, context: TaskContext) -> Optional[EngineResult]:
        query_match = _QUERY_RE.search(prompt)
        if query_match is None:
            return None
        examples: List[Tuple[Dict[str, float], float]] = []
        for m in _EXAMPLE_RE.finditer(prompt):
            features = _parse_features(m.group(1))
            if features:
                examples.append((features, float(m.group(2))))
        if not examples:
            return None
        query = _parse_features(query_match.group(1))
        if not query:
            return None

        # Normalize each feature by its example-set spread.
        keys = sorted({k for f, _t in examples for k in f} | set(query))
        spans: Dict[str, float] = {}
        for key in keys:
            values = [f.get(key, 0.0) for f, _t in examples] + [query.get(key, 0.0)]
            spans[key] = max(values) - min(values) or 1.0

        def distance(features: Dict[str, float]) -> float:
            return math.sqrt(
                sum(
                    ((features.get(k, 0.0) - query.get(k, 0.0)) / spans[k]) ** 2
                    for k in keys
                )
            )

        ranked = sorted(examples, key=lambda ft: distance(ft[0]))[: self.k]
        weights = [1.0 / (distance(f) + 1e-6) for f, _t in ranked]
        total = sum(weights)
        prediction = sum(w * t for w, (_f, t) in zip(weights, ranked)) / total

        difficulty = max(0.05, min(0.9, 0.5 - 0.025 * len(examples) + difficulty_jitter(prompt, 0.05)))
        return EngineResult(
            answer=f"{prediction:.4f}",
            difficulty=difficulty,
            wrong_answers=[],
            engine=self.name,
            numeric=True,
            n_examples=len(examples),
            metadata={"neighbors": len(ranked)},
        )
