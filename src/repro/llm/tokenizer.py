"""Deterministic tokenizer used for token counting and cost metering.

Approximates a BPE tokenizer's behavior without a vocabulary file: text is
split into words/numbers/punctuation, and long words count as multiple
tokens (one per 4 characters, the rule of thumb OpenAI documents). The exact
constants do not matter for the reproduction — only that token counts are
deterministic, monotone in text length, and comparable across prompts.
"""

from __future__ import annotations

import math
import re
from typing import List

_TOKEN_RE = re.compile(r"[A-Za-z]+|[0-9]+|[^\sA-Za-z0-9]")

# Average characters per BPE token for alphabetic words.
_CHARS_PER_TOKEN = 4


def tokenize_text(text: str) -> List[str]:
    """Split text into word / number / punctuation pieces."""
    return _TOKEN_RE.findall(text)


def count_tokens(text: str) -> int:
    """Number of (simulated) BPE tokens in ``text``."""
    total = 0
    for piece in tokenize_text(text):
        if piece.isalpha():
            total += max(1, math.ceil(len(piece) / _CHARS_PER_TOKEN))
        elif piece.isdigit():
            total += max(1, math.ceil(len(piece) / 3))
        else:
            total += 1
    return total
