"""repro.llm — a deterministic simulated LLM service.

The paper's experiments run against the OpenAI API (babbage-002,
gpt-3.5-turbo, gpt-4). This environment is offline, so we substitute a
**capability-graded simulator** (see DESIGN.md §2):

* Every request is routed to a *task engine* — a real, deterministic solver
  for that task family (multi-hop QA, NL2SQL, entity matching, column
  typing, value prediction, table transformation, ...). Engines compute the
  genuinely correct answer from the prompt (plus an optional knowledge base)
  — there is no lookup of hidden gold labels.
* A *capability model* then decides whether the simulated model of the given
  strength answers correctly: models have a capability score in [0, 1],
  queries have a difficulty score, in-context examples add a bonus, and a
  seeded RNG keyed on (model, prompt) injects plausible wrong answers at the
  implied error rate. The same prompt to the same model always yields the
  same answer — exactly the property the paper's cache experiment relies on.
* Token usage is metered with the paper's quoted prices ($0.001/1k input
  tokens for the gpt-3.5-turbo class, $0.03/1k for the gpt-4 class), so all
  "API cost" numbers are real token-accounting outputs, not constants.

Public API:

>>> from repro.llm import LLMClient
>>> client = LLMClient(model="gpt-4")
>>> reply = client.complete("Q: What is 2 + 2?\\nA:")
>>> isinstance(reply.text, str) and reply.cost > 0
True
"""

from repro.llm.client import Completion, LLMClient, Usage, UsageMeter
from repro.llm.embeddings import EmbeddingModel, embed_text
from repro.llm.faults import FAULT_KINDS, FaultInjectingProvider, resolve_model_name
from repro.llm.knowledge import Fact, KnowledgeBase
from repro.llm.models import MODEL_REGISTRY, ModelSpec, get_model, list_models
from repro.llm.provider import CompletionProvider, ReseedableProvider, make_client
from repro.llm.tokenizer import count_tokens, tokenize_text

__all__ = [
    "Completion",
    "CompletionProvider",
    "EmbeddingModel",
    "FAULT_KINDS",
    "Fact",
    "FaultInjectingProvider",
    "KnowledgeBase",
    "LLMClient",
    "MODEL_REGISTRY",
    "ModelSpec",
    "ReseedableProvider",
    "Usage",
    "UsageMeter",
    "make_client",
    "count_tokens",
    "embed_text",
    "get_model",
    "list_models",
    "resolve_model_name",
    "tokenize_text",
]
