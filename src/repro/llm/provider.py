"""The ``CompletionProvider`` protocol — the completion surface of the LLM
service.

Every component that *consumes* completions (the Section II applications,
the Section III optimizations) is written against this protocol rather than
the concrete :class:`~repro.llm.client.LLMClient`, so that any stack of
:mod:`repro.serving` middleware — cache, cascade, retry, budget, metrics —
can stand in for the raw client transparently.

The protocol lives in the ``llm`` layer (not ``serving``) so the dependency
graph stays acyclic: ``core`` adapts providers, ``serving`` composes them,
and both import the protocol from here. :mod:`repro.serving` re-exports it
as its public home.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    import numpy as np

    from repro.llm.client import Completion


@runtime_checkable
class CompletionProvider(Protocol):
    """Anything that can answer prompts: a raw client or a middleware stack.

    :class:`~repro.llm.client.LLMClient` satisfies this protocol directly
    and is the terminal provider of every stack; each middleware in
    :mod:`repro.serving` both consumes and implements it, which is what
    makes the layers composable in any order.
    """

    def complete(self, prompt: str, model: Optional[str] = None) -> "Completion":
        """Answer one prompt, optionally overriding the default model."""
        ...

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List["Completion"]:
        """Answer several prompts sharing one metered prefix."""
        ...

    def embed(self, text: str) -> "np.ndarray":
        """Embed text into the provider's joint vector space."""
        ...


@runtime_checkable
class ReseedableProvider(Protocol):
    """A provider whose error-injection stream can be shifted.

    Deterministic completions make temperature-style resampling impossible;
    the simulator's analogue is a sibling provider with a shifted seed (the
    idiom :func:`repro.core.validation.self_consistency` already uses).
    :class:`~repro.serving.RetryMiddleware` relies on this to re-draw
    rejected completions deterministically.
    """

    def reseeded(self, offset: int) -> "CompletionProvider":
        """A sibling provider drawing from a seed shifted by ``offset``."""
        ...


def make_client(model: str = "gpt-3.5-turbo", seed: int = 0, **kwargs) -> "CompletionProvider":
    """Construct the default terminal provider (a raw ``LLMClient``).

    Exists so modules outside ``llm/`` and ``serving/`` can obtain a
    provider without importing the concrete client class.
    """
    from repro.llm.client import LLMClient

    return LLMClient(model=model, seed=seed, **kwargs)
