"""The simulated LLM client: routing, capability model, usage metering.

``LLMClient.complete`` is the single entry point every application in the
library uses. Its contract mirrors a hosted LLM API:

* deterministic: the same (model, prompt, seed) triple always produces the
  same completion — the property the semantic cache experiment relies on;
* metered: every call accrues token usage and dollar cost at the model's
  registered prices;
* fallible: answers are wrong at a rate driven by model capability, query
  difficulty and the in-context-learning bonus (see DESIGN.md §2).

The correctness probability is::

    p = clip(0.02, 0.995, capability + 0.33 - 0.62 * difficulty + icl)
    icl = min(0.06, 0.02 * n_examples)

calibrated so the Table I workload lands near the paper's numbers
(babbage-002 ≈ 27.5%, gpt-4 ≈ 92.5%).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro._util import stable_hash
from repro.errors import BudgetExceededError, ContextLengthExceededError
from repro.llm.embeddings import EmbeddingModel
from repro.llm.engines.base import Engine, TaskContext, default_engines
from repro.llm.knowledge import KnowledgeBase, World, build_world
from repro.llm.models import ModelSpec, get_model
from repro.llm.tokenizer import count_tokens

_P_FLOOR = 0.02
_P_CEIL = 0.995
_BASE_BONUS = 0.33
_DIFFICULTY_WEIGHT = 0.62
_ICL_PER_EXAMPLE = 0.02
_ICL_CAP = 0.06

_default_world: Optional[World] = None


def default_world() -> World:
    """The shared synthetic world (lazily built, deterministic)."""
    global _default_world
    if _default_world is None:
        _default_world = build_world(seed=0)
    return _default_world


@dataclass(frozen=True)
class Usage:
    """Token usage of one request."""

    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class Completion:
    """One LLM response plus metering and decision-model signals."""

    text: str
    model: str
    usage: Usage
    cost: float
    latency_ms: float
    confidence: float
    engine: str
    metadata: Dict[str, object] = field(default_factory=dict)

    def with_usage(self, usage: Usage, cost: float, **changes: object) -> "Completion":
        """A copy with rewritten metering (middleware that refunds tokens,
        sums cascade attempts, or zeroes cache hits uses this)."""
        return replace(self, usage=usage, cost=cost, **changes)


@dataclass
class UsageMeter:
    """Accumulates calls, tokens and dollars, per model and in total.

    Updates are taken under an internal lock so concurrent completions
    (see :mod:`repro.serving.scheduler`) never lose a read-modify-write;
    note that float totals still depend on summation *order*, which is
    why deterministic concurrent runs serialize execution order."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost: float = 0.0
    per_model: Dict[str, Dict[str, float]] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, model: str, usage: Usage, cost: float) -> None:
        """Accumulate one request's usage and cost."""
        with self._lock:
            self.calls += 1
            self.prompt_tokens += usage.prompt_tokens
            self.completion_tokens += usage.completion_tokens
            self.cost += cost
            entry = self.per_model.setdefault(
                model, {"calls": 0, "prompt_tokens": 0, "completion_tokens": 0, "cost": 0.0}
            )
            entry["calls"] += 1
            entry["prompt_tokens"] += usage.prompt_tokens
            entry["completion_tokens"] += usage.completion_tokens
            entry["cost"] += cost

    def refund(self, model: str, prompt_tokens: int, cost: float) -> None:
        """Give back prompt tokens and dollars previously recorded for
        ``model`` (shared-prefix accounting in batched completions).

        Contract: a refund must reverse part of an earlier :meth:`record`
        for the same model. Refunding a model that was never recorded is a
        caller bug — it used to silently create a phantom per-model entry
        with zero calls and *negative* totals — and raises ``ValueError``
        instead of corrupting the ledger."""
        with self._lock:
            entry = self.per_model.get(model)
            if entry is None:
                raise ValueError(
                    f"cannot refund model {model!r}: it has no recorded usage "
                    "(refunds must reverse an earlier record)"
                )
            self.prompt_tokens -= prompt_tokens
            self.cost -= cost
            entry["prompt_tokens"] -= prompt_tokens
            entry["cost"] -= cost

    def reset(self) -> None:
        """Zero all counters (per-model and totals); the lock survives."""
        with self._lock:
            self.calls = 0
            self.prompt_tokens = 0
            self.completion_tokens = 0
            self.cost = 0.0
            self.per_model.clear()

    def report(self) -> str:
        """Human-readable usage summary (per model + totals)."""
        lines = [f"{'model':16s} {'calls':>6s} {'prompt':>9s} {'output':>9s} {'cost($)':>9s}"]
        for model in sorted(self.per_model):
            entry = self.per_model[model]
            lines.append(
                f"{model:16s} {int(entry['calls']):6d} {int(entry['prompt_tokens']):9d} "
                f"{int(entry['completion_tokens']):9d} {entry['cost']:9.4f}"
            )
        lines.append(
            f"{'TOTAL':16s} {self.calls:6d} {self.prompt_tokens:9d} "
            f"{self.completion_tokens:9d} {self.cost:9.4f}"
        )
        return "\n".join(lines)


class LLMClient:
    """Entry point to the simulated LLM service.

    Parameters
    ----------
    model:
        Default model name (overridable per call).
    knowledge:
        The world the model "knows". Defaults to the shared
        :func:`default_world` knowledge base.
    seed:
        Shifts the error-injection stream; two clients with different seeds
        disagree on borderline queries (like different API snapshots).
    budget_usd:
        Optional hard spending cap; exceeding it raises
        :class:`~repro.errors.BudgetExceededError` *before* the call runs.
    """

    def __init__(
        self,
        model: str = "gpt-3.5-turbo",
        knowledge: Optional[KnowledgeBase] = None,
        seed: int = 0,
        budget_usd: Optional[float] = None,
        embedding_dim: int = 64,
        engines: Optional[List[Engine]] = None,
    ) -> None:
        self.default_model = get_model(model)
        self.knowledge = knowledge if knowledge is not None else default_world().kb
        self.seed = seed
        self.budget_usd = budget_usd
        self.meter = UsageMeter()
        self.embedding_model = EmbeddingModel(dim=embedding_dim)
        self.engines = engines if engines is not None else default_engines()

    # ------------------------------------------------------------- requests

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        """Run one completion request through the capability model."""
        spec = get_model(model) if model is not None else self.default_model
        return self._complete(prompt, spec)

    def _complete(
        self,
        prompt: str,
        spec: ModelSpec,
        prompt_token_discount: int = 0,
        cost_discount: float = 0.0,
    ) -> Completion:
        """One request; the discounts refund a shared prefix already paid
        for by an earlier item of the same batch. The budget check runs on
        the *net* cost, so a batch whose net cost fits never raises."""
        prompt_tokens = count_tokens(prompt)
        if prompt_tokens > spec.context_window:
            raise ContextLengthExceededError(
                f"prompt has {prompt_tokens} tokens; {spec.name} window is "
                f"{spec.context_window}"
            )

        result = self._route(prompt, spec)
        p_correct = self._p_correct(spec, result.difficulty, result.n_examples)
        draw, wrong_pick, conf_eps, noise_eps = self._draws(spec.name, prompt)
        correct = draw < p_correct

        if correct:
            text = result.answer
        elif result.numeric:
            text = self._perturb_numeric(result.answer, spec, noise_eps)
        elif result.wrong_answers:
            text = result.wrong_answers[wrong_pick % len(result.wrong_answers)]
        else:
            text = result.answer  # no plausible alternative exists

        confidence = self._confidence(p_correct, correct, conf_eps)
        completion_tokens = count_tokens(text)
        usage = Usage(prompt_tokens=prompt_tokens, completion_tokens=completion_tokens)
        cost = spec.cost(prompt_tokens, completion_tokens)
        net_cost = cost - cost_discount
        if self.budget_usd is not None and self.meter.cost + net_cost > self.budget_usd:
            raise BudgetExceededError(
                f"call would cost ${net_cost:.4f}, exceeding budget "
                f"${self.budget_usd:.4f} (spent ${self.meter.cost:.4f})"
            )
        self.meter.record(spec.name, usage, cost)
        completion = Completion(
            text=text,
            model=spec.name,
            usage=usage,
            cost=cost,
            latency_ms=spec.latency_ms(prompt_tokens, completion_tokens),
            confidence=confidence,
            engine=result.engine,
            metadata=dict(result.metadata),
        )
        if prompt_token_discount or cost_discount:
            self.meter.refund(spec.name, prompt_token_discount, cost_discount)
            completion = completion.with_usage(
                Usage(
                    prompt_tokens=prompt_tokens - prompt_token_discount,
                    completion_tokens=completion_tokens,
                ),
                net_cost,
            )
        return completion

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        """Query *combination* (Section III-B1): several queries share one
        prompt, so the shared context (schema, few-shot examples) is paid
        for once instead of once per query.

        Each item is still answered independently (the engines see
        ``shared_prefix + item``), but the shared prefix's tokens are
        metered only on the first item. This models a combined prompt like
        "Translate each of the following questions into SQL: 1. ... 2. ..."
        without forcing the engines to split multi-answer completions.
        """
        completions: List[Completion] = []
        spec = get_model(model) if model is not None else self.default_model
        prefix_tokens = count_tokens(shared_prefix)
        refund_cost = spec.cost(prefix_tokens, 0)
        for i, item in enumerate(items):
            completions.append(
                self._complete(
                    shared_prefix + item,
                    spec,
                    prompt_token_discount=prefix_tokens if i > 0 else 0,
                    cost_discount=refund_cost if i > 0 else 0.0,
                )
            )
        return completions

    def reseeded(self, offset: int) -> "LLMClient":
        """A sibling client whose error-injection stream is shifted by
        ``offset`` — the simulator's analogue of resampling at temperature.

        The sibling shares this client's meter, knowledge, engines and
        budget, so retried calls are metered (and budget-capped) in one
        place; only the seed differs."""
        sibling = LLMClient.__new__(LLMClient)
        sibling.default_model = self.default_model
        sibling.knowledge = self.knowledge
        sibling.seed = self.seed + offset
        sibling.budget_usd = self.budget_usd
        sibling.meter = self.meter
        sibling.embedding_model = self.embedding_model
        sibling.engines = self.engines
        return sibling

    def embed(self, text: str) -> np.ndarray:
        """Embed text with the simulated embedding model (not metered —
        embedding costs are negligible next to completion costs and the
        paper's cost numbers are completion-only)."""
        return self.embedding_model.embed(text)

    # -------------------------------------------------------------- internals

    def _route(self, prompt: str, spec: ModelSpec):
        context = TaskContext(knowledge=self.knowledge, model_name=spec.name)
        for engine in self.engines:
            result = engine.try_solve(prompt, context)
            if result is not None:
                return result
        raise RuntimeError("engine chain must terminate with a fallback engine")

    @staticmethod
    def _p_correct(spec: ModelSpec, difficulty: float, n_examples: int) -> float:
        icl = min(_ICL_CAP, _ICL_PER_EXAMPLE * max(0, n_examples))
        p = spec.capability + _BASE_BONUS - _DIFFICULTY_WEIGHT * difficulty + icl
        return min(_P_CEIL, max(_P_FLOOR, p))

    def _draws(self, model_name: str, prompt: str):
        """Four deterministic uniforms keyed on (seed, model, prompt)."""
        h = stable_hash(f"{self.seed}|{model_name}|{prompt}")
        rng = np.random.default_rng(h)
        values = rng.random(3)
        wrong_pick = int(rng.integers(0, 1_000_000))
        return float(values[0]), wrong_pick, float(values[1]), float(values[2])

    @staticmethod
    def _perturb_numeric(answer: str, spec: ModelSpec, eps: float) -> str:
        try:
            value = float(answer)
        except ValueError:
            return answer
        rel = (0.25 + 0.9 * (1.0 - spec.capability)) * (0.5 + eps)
        sign = 1.0 if eps >= 0.5 else -1.0
        return f"{value * (1.0 + sign * rel):.4f}"

    @staticmethod
    def _confidence(p_correct: float, correct: bool, eps: float) -> float:
        """Self-assessed answer quality: correlated with realized
        correctness (a verifier inspecting the answer would be), but noisy
        enough that a thresholding decision model makes real mistakes."""
        conf = 0.12 + 0.55 * p_correct + (0.14 if correct else -0.10) + 0.26 * (eps - 0.5)
        return min(0.99, max(0.01, conf))
