"""The synthetic world: a knowledge base shared by the QA engine, the
HotpotQA-like dataset generator and the "LLM as database" application.

The simulated LLM "knows" these facts the way a real LLM knows pre-training
facts. Because both the question generator and the answer engine read the
same :class:`KnowledgeBase`, the engine genuinely *derives* answers (multi-
hop traversal) rather than looking up question→answer pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro._util import rng_from


@dataclass(frozen=True)
class Fact:
    """One (subject, relation, object) triple."""

    subject: str
    relation: str
    object: object

    def __str__(self) -> str:
        return f"({self.subject} --{self.relation}--> {self.object})"


class KnowledgeBase:
    """Triple store with subject and relation indexes."""

    def __init__(self) -> None:
        self.facts: List[Fact] = []
        self._by_subject: Dict[str, List[Fact]] = {}
        self._by_relation: Dict[str, List[Fact]] = {}
        self.entity_types: Dict[str, str] = {}

    def add(self, subject: str, relation: str, obj: object, subject_type: Optional[str] = None) -> Fact:
        """Insert one fact (and optionally tag the subject's type)."""
        fact = Fact(subject=subject, relation=relation, object=obj)
        self.facts.append(fact)
        self._by_subject.setdefault(subject.lower(), []).append(fact)
        self._by_relation.setdefault(relation, []).append(fact)
        if subject_type:
            self.entity_types[subject] = subject_type
        return fact

    def __len__(self) -> int:
        return len(self.facts)

    def query(
        self,
        subject: Optional[str] = None,
        relation: Optional[str] = None,
        obj: Optional[object] = None,
    ) -> List[Fact]:
        """All facts matching the given (possibly partial) pattern."""
        if subject is not None:
            candidates = self._by_subject.get(subject.lower(), [])
        elif relation is not None:
            candidates = self._by_relation.get(relation, [])
        else:
            candidates = self.facts
        out = []
        for fact in candidates:
            if relation is not None and fact.relation != relation:
                continue
            if obj is not None and fact.object != obj:
                continue
            out.append(fact)
        return out

    def one(self, subject: str, relation: str) -> Optional[object]:
        """The object of the first matching fact, or None."""
        facts = self.query(subject=subject, relation=relation)
        return facts[0].object if facts else None

    def subjects_with(self, relation: str, obj: object) -> List[str]:
        """All subjects s such that (s, relation, obj) holds."""
        return [f.subject for f in self._by_relation.get(relation, []) if f.object == obj]

    def entities_of_type(self, entity_type: str) -> List[str]:
        return sorted(e for e, t in self.entity_types.items() if t == entity_type)

    def relations(self) -> List[str]:
        return sorted(self._by_relation)

    def iter_facts(self) -> Iterator[Fact]:
        return iter(self.facts)


# --------------------------------------------------------------------------
# Deterministic world generation
# --------------------------------------------------------------------------

_FIRST_SYLLABLES = [
    "Al", "Ber", "Car", "Dan", "El", "Fer", "Gus", "Hel", "Ivo", "Jor",
    "Kar", "Lue", "Mar", "Nor", "Oli", "Pet", "Quin", "Ros", "Sam", "Tor",
]
_SECOND_SYLLABLES = ["an", "en", "in", "on", "ar", "er", "or", "ia", "io", "us"]
_SURNAME_PARTS = [
    "Vald", "Mor", "Hart", "Lind", "Bren", "Cald", "Dray", "Fenn", "Gray", "Holt",
    "Kess", "Lorn", "Mend", "Nash", "Orr", "Pell", "Quill", "Rook", "Stell", "Thorn",
]
_SURNAME_ENDS = ["er", "man", "son", "wick", "field", "worth", "ley", "by", "ton", "gate"]
_CITY_PARTS = ["River", "Stone", "Green", "North", "South", "East", "West", "Gold", "Silver", "Iron"]
_CITY_ENDS = ["ford", "port", "burg", "ville", "haven", "dale", "mouth", "stead", "bridge", "field"]
_COUNTRIES = [
    "Aurelia", "Borvia", "Caldora", "Drevany", "Eastmark", "Fenwick",
    "Galdova", "Hestria", "Ivoria", "Jastania",
]
_FILM_ADJ = ["Silent", "Crimson", "Golden", "Hidden", "Broken", "Distant", "Frozen", "Burning", "Velvet", "Hollow"]
_FILM_NOUN = ["Harbor", "Empire", "Garden", "Mirror", "Voyage", "Winter", "Canyon", "Signal", "Orchid", "Meridian"]
_TEAM_NOUN = ["Falcons", "Tigers", "Mariners", "Comets", "Wolves", "Royals", "Giants", "Hawks", "Pioneers", "Rangers"]
_SPORTS = ["Basketball", "Football", "Baseball", "Hockey", "Tennis", "Volleyball", "Rugby", "Cricket"]


def _person_name(rng: np.random.Generator) -> str:
    first = rng.choice(_FIRST_SYLLABLES) + rng.choice(_SECOND_SYLLABLES)
    last = rng.choice(_SURNAME_PARTS) + rng.choice(_SURNAME_ENDS)
    return f"{first} {last}"


@dataclass
class World:
    """A generated world plus convenience entity lists."""

    kb: KnowledgeBase
    people: List[str] = field(default_factory=list)
    films: List[str] = field(default_factory=list)
    teams: List[str] = field(default_factory=list)
    cities: List[str] = field(default_factory=list)
    countries: List[str] = field(default_factory=list)


def build_world(
    seed: int = 0,
    n_people: int = 60,
    n_films: int = 30,
    n_teams: int = 12,
    n_cities: int = 15,
) -> World:
    """Generate a deterministic world of people, films, teams and places.

    Relations produced:
    ``directed_by``, ``starred``, ``released_in`` (films);
    ``born_in``, ``born_year``, ``profession``, ``plays_for`` (people);
    ``based_in``, ``plays_sport``, ``founded_in`` (teams);
    ``located_in``, ``population`` (cities).
    """
    rng = rng_from(seed)
    kb = KnowledgeBase()
    world = World(kb=kb)

    world.countries = list(_COUNTRIES)
    for country in world.countries:
        kb.entity_types[country] = "country"

    used_names: set = set()

    def fresh(maker) -> str:
        for _attempt in range(200):
            name = maker()
            if name not in used_names:
                used_names.add(name)
                return name
        raise RuntimeError("name space exhausted; enlarge the generators")

    for _i in range(n_cities):
        city = fresh(lambda: str(rng.choice(_CITY_PARTS)) + str(rng.choice(_CITY_ENDS)))
        country = str(rng.choice(world.countries))
        kb.add(city, "located_in", country, subject_type="city")
        kb.add(city, "population", int(rng.integers(50, 5000)) * 1000)
        world.cities.append(city)

    for _i in range(n_people):
        person = fresh(lambda: _person_name(rng))
        city = str(rng.choice(world.cities))
        kb.add(person, "born_in", city, subject_type="person")
        kb.add(person, "born_year", int(rng.integers(1940, 2001)))
        world.people.append(person)

    directors = world.people[: max(4, n_people // 6)]
    actors = world.people[len(directors) : len(directors) + max(8, n_people // 2)]
    players = world.people[len(directors) + len(actors) :]
    for person in directors:
        kb.add(person, "profession", "director")
    for person in actors:
        kb.add(person, "profession", "actor")
    for person in players:
        kb.add(person, "profession", "athlete")

    for _i in range(n_teams):
        team = fresh(
            lambda: str(rng.choice(_CITY_PARTS)) + " " + str(rng.choice(_TEAM_NOUN))
        )
        city = str(rng.choice(world.cities))
        kb.add(team, "based_in", city, subject_type="team")
        kb.add(team, "plays_sport", str(rng.choice(_SPORTS)))
        kb.add(team, "founded_in", int(rng.integers(1900, 1996)))
        world.teams.append(team)

    for player in players:
        kb.add(player, "plays_for", str(rng.choice(world.teams)))

    for _i in range(n_films):
        film = fresh(
            lambda: "The " + str(rng.choice(_FILM_ADJ)) + " " + str(rng.choice(_FILM_NOUN))
        )
        director = str(rng.choice(directors))
        kb.add(film, "directed_by", director, subject_type="film")
        kb.add(film, "released_in", int(rng.integers(1960, 2023)))
        cast_size = int(rng.integers(1, 4))
        cast_idx = rng.choice(len(actors), size=min(cast_size, len(actors)), replace=False)
        for idx in cast_idx:
            kb.add(film, "starred", actors[int(idx)])
        world.films.append(film)

    return world
