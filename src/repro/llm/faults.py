"""Deterministic fault injection for any completion provider.

The simulated LLM service never fails, so the serving stack's failure
handling (:mod:`repro.serving.resilience`) would otherwise be untestable
and unbenchmarkable. :class:`FaultInjectingProvider` wraps any
:class:`~repro.llm.provider.CompletionProvider` and injects
:class:`~repro.errors.TransientLLMError` subclasses — rate limits,
timeouts, unavailability — from a seeded per-request RNG at configurable
per-model rates.

Faults follow the library's determinism contract: whether a given
``(seed, model, prompt)`` request faults, and with which error, is a pure
function of that triple — replaying a workload replays its faults.
``reseeded(offset)`` shifts the fault stream together with the inner
provider's completion stream, which is what lets a retry through a
reseeded sibling draw a *fresh* fault uniform and (usually) succeed.

Injected errors carry a simulated ``latency_ms`` (the time the doomed
attempt burned: a timeout costs the full deadline, a rate-limit rejection
is near-instant), so resilience layers can account failure time into
end-to-end latency without sleeping.

:class:`CrashPoint` injects a different failure class entirely: a
deterministic *process death* at a chosen request index
(:class:`~repro.errors.SimulatedCrashError`, which the resilience layer
deliberately does not catch). It drives the crash-recovery sweep in
``benchmarks/bench_perf_recovery.py`` against :mod:`repro.durability`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Type

import numpy as np

from repro._util import stable_hash
from repro.errors import (
    RateLimitError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    SimulatedCrashError,
)
from repro.llm.client import Completion

#: Injectable fault kinds with the simulated milliseconds each one burns.
FAULT_KINDS: List[tuple] = [
    (RateLimitError, 5.0),  # rejected at the front door: near-instant
    (ServiceTimeoutError, 1000.0),  # burned the whole request deadline
    (ServiceUnavailableError, 50.0),  # connection refused / 503 after TLS
]


def resolve_model_name(provider: object, model: Optional[str]) -> str:
    """The model a request will hit: the explicit ``model`` argument, else
    the wrapped terminal client's default. Middleware layers delegate via
    ``inner``, so walk the chain until something carries a default."""
    if model is not None:
        return model
    node = provider
    while node is not None:
        default = getattr(node, "default_model", None)
        if default is not None:
            return getattr(default, "name", str(default))
        node = getattr(node, "inner", None)
    return "default"


class FaultInjectingProvider:
    """Wrap a provider; fail a deterministic fraction of its requests.

    Parameters
    ----------
    inner:
        The provider that answers the requests that survive injection.
    rates:
        Per-model fault probabilities, e.g. ``{"gpt-4": 0.15}``. Models not
        listed fall back to ``default_rate``.
    default_rate:
        Fault probability for models without an explicit rate.
    seed:
        Shifts the fault stream (independently of the completion stream's
        seed, but reseeded in lockstep by :meth:`reseeded`).
    """

    def __init__(
        self,
        inner: "object",
        rates: Optional[Dict[str, float]] = None,
        default_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if default_rate < 0.0 or default_rate > 1.0:
            raise ValueError("default_rate must be in [0, 1]")
        for name, rate in (rates or {}).items():
            if rate < 0.0 or rate > 1.0:
                raise ValueError(f"rate for {name!r} must be in [0, 1]")
        self.inner = inner
        self.rates = dict(rates or {})
        self.default_rate = default_rate
        self.seed = seed
        # Injection tally, per error class name. Shared (same dict object)
        # across reseeded siblings so a whole retry tree counts in one place.
        self.injected: Dict[str, int] = {}
        self._injected_lock = threading.Lock()

    # ------------------------------------------------------------ injection

    def rate_for(self, model: str) -> float:
        return self.rates.get(model, self.default_rate)

    def _maybe_inject(self, request_key: str, model: str) -> None:
        rate = self.rate_for(model)
        if rate <= 0.0:
            return
        h = stable_hash(f"fault|{self.seed}|{model}|{request_key}")
        rng = np.random.default_rng(h)
        if float(rng.random()) >= rate:
            return
        kind, latency_ms = FAULT_KINDS[int(rng.integers(0, len(FAULT_KINDS)))]
        with self._injected_lock:
            self.injected[kind.__name__] = self.injected.get(kind.__name__, 0) + 1
        raise kind(
            f"injected {kind.__name__} for model {model}",
            model=model,
            latency_ms=latency_ms,
        )

    @property
    def total_injected(self) -> int:
        with self._injected_lock:
            return sum(self.injected.values())

    # ------------------------------------------------------------ provider API

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        self._maybe_inject(prompt, resolve_model_name(self.inner, model))
        return self.inner.complete(prompt, model=model)

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        # One combined request, one fault draw: the whole batch fails or none.
        key = "batch|" + shared_prefix + "|" + "|".join(items)
        self._maybe_inject(key, resolve_model_name(self.inner, model))
        return self.inner.complete_batch(shared_prefix, items, model=model)

    def embed(self, text: str) -> np.ndarray:
        return self.inner.embed(text)

    def reseeded(self, offset: int) -> "FaultInjectingProvider":
        """A sibling whose fault *and* completion streams are shifted by
        ``offset``; the injection tally stays shared."""
        sibling = FaultInjectingProvider.__new__(FaultInjectingProvider)
        sibling.inner = (
            self.inner.reseeded(offset) if hasattr(self.inner, "reseeded") else self.inner
        )
        sibling.rates = self.rates
        sibling.default_rate = self.default_rate
        sibling.seed = self.seed + offset
        sibling.injected = self.injected
        sibling._injected_lock = self._injected_lock
        return sibling


class CrashPoint:
    """Deterministic kill-switch: the request at index ``crash_at`` dies.

    Wraps any provider and counts requests (a shared-prefix batch counts
    as one, mirroring :class:`FaultInjectingProvider`'s one-draw-per-batch
    rule). The request whose zero-based index equals ``crash_at`` raises
    :class:`~repro.errors.SimulatedCrashError` *before* reaching the inner
    provider — the analogue of the process dying mid-request, after any
    outer layers have already mutated their state but before the request
    was acknowledged or journaled.

    The crash fires exactly once: a driver that catches the error,
    discards its stack and rebuilds from durable state can keep using the
    same wrapped client for the resumed run (the counter keeps advancing,
    the crash does not re-fire). :meth:`seeded` derives the crash index
    from a seed the way the transient faults derive their draws, so crash
    sweeps randomize reproducibly.

    The counter and the fired flag are shared by ``reseeded`` siblings —
    a retry redraw belongs to the same simulated process.
    """

    def __init__(self, inner: "object", crash_at: Optional[int] = None) -> None:
        if crash_at is not None and crash_at < 0:
            raise ValueError("crash_at must be non-negative (or None to disarm)")
        self.inner = inner
        self.crash_at = crash_at
        # One-slot holders so reseeded siblings share the request counter
        # and the fired flag (copy.copy-style sharing, like the ledger).
        self._count = {"value": 0}
        self._fired = {"value": False}
        self._lock = threading.Lock()

    @classmethod
    def seeded(cls, inner: "object", n_requests: int, seed: int = 0) -> "CrashPoint":
        """A crash point whose index is a seeded draw in ``[0, n_requests)``
        — deterministic in ``seed``, like the transient-fault draws."""
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        h = stable_hash(f"crash|{seed}|{n_requests}")
        rng = np.random.default_rng(h)
        return cls(inner, crash_at=int(rng.integers(0, n_requests)))

    @property
    def requests_seen(self) -> int:
        with self._lock:
            return self._count["value"]

    @property
    def crashed(self) -> bool:
        with self._lock:
            return self._fired["value"]

    def _tick(self, model: Optional[str]) -> None:
        with self._lock:
            index = self._count["value"]
            self._count["value"] = index + 1
            if self.crash_at is None or self._fired["value"] or index != self.crash_at:
                return
            self._fired["value"] = True
        raise SimulatedCrashError(
            f"simulated process crash at request index {index} "
            f"(model {resolve_model_name(self.inner, model)})"
        )

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        self._tick(model)
        return self.inner.complete(prompt, model=model)

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        self._tick(model)
        return self.inner.complete_batch(shared_prefix, items, model=model)

    def embed(self, text: str) -> np.ndarray:
        return self.inner.embed(text)

    def reseeded(self, offset: int) -> "CrashPoint":
        sibling = CrashPoint.__new__(CrashPoint)
        sibling.inner = (
            self.inner.reseeded(offset) if hasattr(self.inner, "reseeded") else self.inner
        )
        sibling.crash_at = self.crash_at
        sibling._count = self._count
        sibling._fired = self._fired
        sibling._lock = self._lock
        return sibling
