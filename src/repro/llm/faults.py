"""Deterministic fault injection for any completion provider.

The simulated LLM service never fails, so the serving stack's failure
handling (:mod:`repro.serving.resilience`) would otherwise be untestable
and unbenchmarkable. :class:`FaultInjectingProvider` wraps any
:class:`~repro.llm.provider.CompletionProvider` and injects
:class:`~repro.errors.TransientLLMError` subclasses — rate limits,
timeouts, unavailability — from a seeded per-request RNG at configurable
per-model rates.

Faults follow the library's determinism contract: whether a given
``(seed, model, prompt)`` request faults, and with which error, is a pure
function of that triple — replaying a workload replays its faults.
``reseeded(offset)`` shifts the fault stream together with the inner
provider's completion stream, which is what lets a retry through a
reseeded sibling draw a *fresh* fault uniform and (usually) succeed.

Injected errors carry a simulated ``latency_ms`` (the time the doomed
attempt burned: a timeout costs the full deadline, a rate-limit rejection
is near-instant), so resilience layers can account failure time into
end-to-end latency without sleeping.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Type

import numpy as np

from repro._util import stable_hash
from repro.errors import RateLimitError, ServiceTimeoutError, ServiceUnavailableError
from repro.llm.client import Completion

#: Injectable fault kinds with the simulated milliseconds each one burns.
FAULT_KINDS: List[tuple] = [
    (RateLimitError, 5.0),  # rejected at the front door: near-instant
    (ServiceTimeoutError, 1000.0),  # burned the whole request deadline
    (ServiceUnavailableError, 50.0),  # connection refused / 503 after TLS
]


def resolve_model_name(provider: object, model: Optional[str]) -> str:
    """The model a request will hit: the explicit ``model`` argument, else
    the wrapped terminal client's default. Middleware layers delegate via
    ``inner``, so walk the chain until something carries a default."""
    if model is not None:
        return model
    node = provider
    while node is not None:
        default = getattr(node, "default_model", None)
        if default is not None:
            return getattr(default, "name", str(default))
        node = getattr(node, "inner", None)
    return "default"


class FaultInjectingProvider:
    """Wrap a provider; fail a deterministic fraction of its requests.

    Parameters
    ----------
    inner:
        The provider that answers the requests that survive injection.
    rates:
        Per-model fault probabilities, e.g. ``{"gpt-4": 0.15}``. Models not
        listed fall back to ``default_rate``.
    default_rate:
        Fault probability for models without an explicit rate.
    seed:
        Shifts the fault stream (independently of the completion stream's
        seed, but reseeded in lockstep by :meth:`reseeded`).
    """

    def __init__(
        self,
        inner: "object",
        rates: Optional[Dict[str, float]] = None,
        default_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if default_rate < 0.0 or default_rate > 1.0:
            raise ValueError("default_rate must be in [0, 1]")
        for name, rate in (rates or {}).items():
            if rate < 0.0 or rate > 1.0:
                raise ValueError(f"rate for {name!r} must be in [0, 1]")
        self.inner = inner
        self.rates = dict(rates or {})
        self.default_rate = default_rate
        self.seed = seed
        # Injection tally, per error class name. Shared (same dict object)
        # across reseeded siblings so a whole retry tree counts in one place.
        self.injected: Dict[str, int] = {}
        self._injected_lock = threading.Lock()

    # ------------------------------------------------------------ injection

    def rate_for(self, model: str) -> float:
        return self.rates.get(model, self.default_rate)

    def _maybe_inject(self, request_key: str, model: str) -> None:
        rate = self.rate_for(model)
        if rate <= 0.0:
            return
        h = stable_hash(f"fault|{self.seed}|{model}|{request_key}")
        rng = np.random.default_rng(h)
        if float(rng.random()) >= rate:
            return
        kind, latency_ms = FAULT_KINDS[int(rng.integers(0, len(FAULT_KINDS)))]
        with self._injected_lock:
            self.injected[kind.__name__] = self.injected.get(kind.__name__, 0) + 1
        raise kind(
            f"injected {kind.__name__} for model {model}",
            model=model,
            latency_ms=latency_ms,
        )

    @property
    def total_injected(self) -> int:
        with self._injected_lock:
            return sum(self.injected.values())

    # ------------------------------------------------------------ provider API

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        self._maybe_inject(prompt, resolve_model_name(self.inner, model))
        return self.inner.complete(prompt, model=model)

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        # One combined request, one fault draw: the whole batch fails or none.
        key = "batch|" + shared_prefix + "|" + "|".join(items)
        self._maybe_inject(key, resolve_model_name(self.inner, model))
        return self.inner.complete_batch(shared_prefix, items, model=model)

    def embed(self, text: str) -> np.ndarray:
        return self.inner.embed(text)

    def reseeded(self, offset: int) -> "FaultInjectingProvider":
        """A sibling whose fault *and* completion streams are shifted by
        ``offset``; the injection tally stays shared."""
        sibling = FaultInjectingProvider.__new__(FaultInjectingProvider)
        sibling.inner = (
            self.inner.reseeded(offset) if hasattr(self.inner, "reseeded") else self.inner
        )
        sibling.rates = self.rates
        sibling.default_rate = self.default_rate
        sibling.seed = self.seed + offset
        sibling.injected = self.injected
        sibling._injected_lock = self._injected_lock
        return sibling
