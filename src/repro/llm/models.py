"""Model registry: capability, pricing and context windows.

Prices follow the paper's Section III-B1 quote: "the latest price of GPT-3.5
Turbo is $0.001/1k input tokens, and GPT-4 is $0.03/1k input tokens". The
babbage-002 price is OpenAI's published $0.0004/1k. Capability scores are the
simulator's free parameters, calibrated so the Table I accuracy ordering and
rough magnitudes reproduce (babbage-002 ≈ 27.5%, gpt-4 ≈ 92.5% on the
HotpotQA-like workload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import UnknownModelError


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one simulated model."""

    name: str
    capability: float  # [0, 1] — drives the error model
    input_price_per_1k: float  # USD per 1k prompt tokens
    output_price_per_1k: float  # USD per 1k completion tokens
    context_window: int
    latency_ms_per_token: float  # synthetic latency model

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Dollar cost of one request at this model's prices."""
        return (
            prompt_tokens * self.input_price_per_1k
            + completion_tokens * self.output_price_per_1k
        ) / 1000.0

    def latency_ms(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Synthetic end-to-end latency estimate for one request."""
        return 30.0 + self.latency_ms_per_token * (0.2 * prompt_tokens + completion_tokens)


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        ModelSpec(
            name="babbage-002",
            capability=0.32,
            input_price_per_1k=0.0004,
            output_price_per_1k=0.0004,
            context_window=4_096,
            latency_ms_per_token=4.0,
        ),
        ModelSpec(
            name="gpt-3.5-turbo",
            capability=0.72,
            input_price_per_1k=0.001,
            output_price_per_1k=0.002,
            context_window=16_384,
            latency_ms_per_token=10.0,
        ),
        ModelSpec(
            name="gpt-4",
            capability=0.96,
            input_price_per_1k=0.03,
            output_price_per_1k=0.06,
            context_window=32_768,
            latency_ms_per_token=35.0,
        ),
        # A local open-source stand-in used by the privacy experiments
        # (Section III-D): weaker than gpt-3.5 but free to query.
        ModelSpec(
            name="local-7b",
            capability=0.55,
            input_price_per_1k=0.0,
            output_price_per_1k=0.0,
            context_window=8_192,
            latency_ms_per_token=20.0,
        ),
    )
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec; raises :class:`UnknownModelError`."""
    if name not in MODEL_REGISTRY:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise UnknownModelError(f"unknown model {name!r} (known: {known})")
    return MODEL_REGISTRY[name]


def list_models() -> List[ModelSpec]:
    """All registered models, cheapest first."""
    return sorted(MODEL_REGISTRY.values(), key=lambda m: m.input_price_per_1k)
