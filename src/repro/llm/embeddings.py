"""Deterministic text embeddings (the simulated embedding model).

Uses the feature-hashing trick: every word unigram and character trigram is
mapped to a stable pseudo-random Gaussian direction (seeded by a blake2b
hash of the feature), and a text's embedding is the TF-weighted mean of its
feature directions, L2-normalized. Properties that matter here:

* texts sharing words/roots get high cosine similarity (semantic-ish);
* fully deterministic across processes (no :func:`hash` randomization);
* cheap enough to embed thousands of prompts in tests.

This stands in for the LLM-produced embeddings the paper assumes for prompt
stores, semantic caches and multi-modal lakes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._util import stable_hash, words

DEFAULT_DIM = 64
DEFAULT_MEMO_SIZE = 4096
DEFAULT_MATRIX_MEMO_SIZE = 4

_STOPWORDS = frozenset(
    """
    a an and are as at be by for from had has have in is it of on or that the
    this to was were what which who whom with
    """.split()
)

# Process-wide feature-direction memo. Left unlocked on purpose: single
# get/set dict operations are atomic under CPython, values are pure
# functions of the key, and a racy double-compute stores the same vector.
_direction_cache: Dict[str, np.ndarray] = {}


def _direction(feature: str, dim: int) -> np.ndarray:
    key = f"{dim}:{feature}"
    cached = _direction_cache.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(stable_hash(key, bits=63))
    vec = rng.standard_normal(dim)
    vec /= np.linalg.norm(vec)
    if len(_direction_cache) < 200_000:
        _direction_cache[key] = vec
    return vec


def _features(text: str) -> Iterable[tuple]:
    """Yield (feature, weight) pairs for a text."""
    tokens = [w.lower() for w in words(text)]
    for token in tokens:
        weight = 0.25 if token in _STOPWORDS else 1.0
        yield f"w:{token}", weight
        if len(token) >= 5:
            for i in range(len(token) - 2):
                yield f"t:{token[i : i + 3]}", 0.3
    # Bigrams capture a little word order.
    for a, b in zip(tokens, tokens[1:]):
        if a not in _STOPWORDS or b not in _STOPWORDS:
            yield f"b:{a}_{b}", 0.5


def embed_text(text: str, dim: int = DEFAULT_DIM) -> np.ndarray:
    """Embed ``text`` into a unit vector of dimension ``dim``."""
    acc = np.zeros(dim, dtype=np.float64)
    any_feature = False
    for feature, weight in _features(text):
        acc += weight * _direction(feature, dim)
        any_feature = True
    if not any_feature:
        return np.zeros(dim, dtype=np.float64)
    norm = np.linalg.norm(acc)
    if norm > 0:
        acc /= norm
    return acc


class EmbeddingModel:
    """Object-style wrapper so callers can inject alternative embedders.

    Repeated texts skip feature hashing entirely through a bounded LRU memo
    (``memo_size`` entries; 0 disables it). Memoized vectors are shared
    between callers and therefore returned read-only — every consumer in
    this codebase copies on store, so sharing is safe and keeps a memo hit
    allocation-free on the serving hot path.

    Thread safety: the memo's hit bookkeeping (``move_to_end``) and its
    insert/evict pair mutate the OrderedDict and are guarded by a lock.
    The actual embedding runs *off* the lock — a concurrent double-compute
    of the same text produces the identical vector, so losing that race
    only costs a little CPU, never correctness.
    """

    def __init__(self, dim: int = DEFAULT_DIM, memo_size: int = DEFAULT_MEMO_SIZE) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if memo_size < 0:
            raise ValueError("memo_size must be non-negative")
        self.dim = dim
        self.memo_size = memo_size
        self._memo: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._memo_lock = threading.Lock()
        self._matrix_memo: "OrderedDict[bytes, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )

    def embed(self, text: str) -> np.ndarray:
        memo = self._memo
        with self._memo_lock:
            vec = memo.get(text)
            if vec is not None:
                memo.move_to_end(text)
                return vec
        vec = embed_text(text, dim=self.dim)
        vec.setflags(write=False)
        if self.memo_size > 0:
            with self._memo_lock:
                memo[text] = vec
                if len(memo) > self.memo_size:
                    memo.popitem(last=False)
        return vec

    def embed_batch(self, texts: List[str]) -> np.ndarray:
        """Embed several texts; returns an (n, dim) matrix.

        One lock acquisition sweeps the memo for every text (instead of a
        lock round-trip per text), repeated texts within the batch are
        computed once, and only the misses run the feature-hashing loop.
        Each row is the exact vector :meth:`embed` returns for that text —
        per-text embeddings are a pure function of the text, so batching
        changes the locking pattern, never the values.
        """
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        memo = self._memo
        rows: List[Optional[np.ndarray]] = [None] * len(texts)
        misses: Dict[str, List[int]] = {}
        with self._memo_lock:
            for i, text in enumerate(texts):
                vec = memo.get(text)
                if vec is not None:
                    memo.move_to_end(text)
                    rows[i] = vec
                else:
                    misses.setdefault(text, []).append(i)
        if misses:
            computed: Dict[str, np.ndarray] = {}
            for text in misses:
                vec = embed_text(text, dim=self.dim)
                vec.setflags(write=False)
                computed[text] = vec
                for i in misses[text]:
                    rows[i] = vec
            if self.memo_size > 0:
                with self._memo_lock:
                    for text, vec in computed.items():
                        memo[text] = vec
                        if len(memo) > self.memo_size:
                            memo.popitem(last=False)
        return np.stack(rows)

    @staticmethod
    def _texts_digest(texts: List[str]) -> bytes:
        """Collision-safe content key for a text sequence.

        Hashes the joined payload *and* the per-text lengths — the lengths
        uniquely partition the joined string, so ["a\\x1fb"] and ["a", "b"]
        can never share a key."""
        joined = "\x1f".join(texts).encode("utf-8", "surrogatepass")
        lengths = np.fromiter((len(t) for t in texts), dtype=np.int64)
        digest = hashlib.blake2b(joined, digest_size=16)
        digest.update(lengths.tobytes())
        return digest.digest()

    def embed_matrix(self, texts: List[str]) -> Tuple[np.ndarray, np.ndarray]:
        """Embed a candidate pool once; returns ``(matrix, row_norms)``.

        Selection scans the same candidate pool on every call, so even a
        memo-hit :meth:`embed_batch` pays n dict touches plus an (n, dim)
        stack each time. This path hashes the pool's content once and
        caches the stacked matrix and its row norms (a small LRU of
        :data:`DEFAULT_MATRIX_MEMO_SIZE` pools) — embeddings are a pure
        function of the text, so a content hit can never go stale. Both
        arrays are returned read-only; rows and norms are exactly what
        :meth:`embed_batch` and ``np.linalg.norm(matrix, axis=1)`` produce.
        """
        key = self._texts_digest(texts)
        with self._memo_lock:
            hit = self._matrix_memo.get(key)
            if hit is not None:
                self._matrix_memo.move_to_end(key)
                return hit
        matrix = self.embed_batch(texts)
        norms = np.linalg.norm(matrix, axis=1)
        matrix.setflags(write=False)
        norms.setflags(write=False)
        with self._memo_lock:
            self._matrix_memo[key] = (matrix, norms)
            if len(self._matrix_memo) > DEFAULT_MATRIX_MEMO_SIZE:
                self._matrix_memo.popitem(last=False)
        return matrix, norms
