"""Column-type corpus and joinable-column pairs (Sections II-C1, II-B3).

``generate_column_corpus`` emits labeled value columns for the column-type
annotation task, drawing entity values from the shared synthetic world so
the simulated LLM's gazetteer knowledge is exercised rather than bypassed.

``generate_joinable_pairs`` emits column pairs that denote the same values
under different formats — the paper's "Aug 14 2023" vs "8/14/2023" example —
with the gold transformation name attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro._util import rng_from
from repro.llm.knowledge import World

_MONTHS = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]
_SPORTS = [
    "Basketball", "Football", "Baseball", "Hockey", "Tennis",
    "Volleyball", "Rugby", "Cricket", "Badminton", "Table Tennis",
]


@dataclass(frozen=True)
class ColumnExample:
    """A value column with its gold semantic type."""

    values: Tuple[str, ...]
    column_type: str


@dataclass(frozen=True)
class JoinableColumnPair:
    """Two columns denoting the same values in different formats."""

    source: Tuple[str, ...]
    target: Tuple[str, ...]
    transform_name: str  # gold transformation id


def generate_column_corpus(
    world: World, n: int = 60, seed: int = 0, values_per_column: int = 4
) -> Tuple[List[str], List[ColumnExample]]:
    """Returns (candidate type list, labeled examples)."""
    rng = rng_from(seed)

    def sample(pool: List[str]) -> Tuple[str, ...]:
        idx = rng.choice(len(pool), size=min(values_per_column, len(pool)), replace=False)
        return tuple(pool[int(i)] for i in idx)

    def dates() -> Tuple[str, ...]:
        return tuple(
            f"{_MONTHS[int(rng.integers(0, 12))]} {int(rng.integers(1, 29)):02d} "
            f"{int(rng.integers(1990, 2024))}"
            for _ in range(values_per_column)
        )

    def years() -> Tuple[str, ...]:
        return tuple(str(int(rng.integers(1900, 2024))) for _ in range(values_per_column))

    generators: Dict[str, Callable[[], Tuple[str, ...]]] = {
        "country": lambda: sample(world.countries),
        "city": lambda: sample(world.cities),
        "person": lambda: sample(world.people),
        "movie": lambda: sample(world.films),
        "team": lambda: sample(world.teams),
        "sports": lambda: sample(_SPORTS),
        "date": dates,
        "year": years,
    }
    types = sorted(generators)
    examples = []
    for i in range(n):
        column_type = types[i % len(types)]
        examples.append(ColumnExample(values=generators[column_type](), column_type=column_type))
    rng.shuffle(examples)
    return types, examples


# ------------------------------------------------------------ joinable pairs

_TRANSFORMS: Dict[str, Callable[[int, int, int], Tuple[str, str]]] = {
    # name -> (year, month, day) -> (source_value, target_value)
    "date_mdy_to_slash": lambda y, m, d: (f"{_MONTHS[m - 1]} {d:02d} {y}", f"{m}/{d}/{y}"),
    "date_slash_to_iso": lambda y, m, d: (f"{m}/{d}/{y}", f"{y:04d}-{m:02d}-{d:02d}"),
    "date_iso_to_mdy": lambda y, m, d: (f"{y:04d}-{m:02d}-{d:02d}", f"{_MONTHS[m - 1]} {d:02d} {y}"),
}

_NAME_TRANSFORMS = {
    "name_last_first_to_first_last": lambda first, last: (f"{last}, {first}", f"{first} {last}"),
    "name_first_last_to_last_first": lambda first, last: (f"{first} {last}", f"{last}, {first}"),
}

_PHONE_TRANSFORMS = {
    "phone_dash_to_dot": lambda a, b, c: (f"{a}-{b}-{c}", f"{a}.{b}.{c}"),
    "phone_plain_to_dash": lambda a, b, c: (f"{a}{b}{c}", f"{a}-{b}-{c}"),
}


def transform_names() -> List[str]:
    """All gold transformation ids the generator can emit."""
    return sorted(list(_TRANSFORMS) + list(_NAME_TRANSFORMS) + list(_PHONE_TRANSFORMS))


def generate_joinable_pairs(
    n: int = 24, seed: int = 0, values_per_column: int = 5
) -> List[JoinableColumnPair]:
    """Generate joinable-column pairs covering dates, names and phones."""
    rng = rng_from(seed)
    pairs: List[JoinableColumnPair] = []
    first_names = ["Alice", "Bruno", "Clara", "Diego", "Elena", "Felix", "Grace", "Henry"]
    last_names = ["Marsh", "Okafor", "Petrov", "Quinn", "Reyes", "Sato", "Turner", "Ueda"]
    kinds = list(_TRANSFORMS) + list(_NAME_TRANSFORMS) + list(_PHONE_TRANSFORMS)
    for i in range(n):
        kind = kinds[i % len(kinds)]
        source, target = [], []
        for _j in range(values_per_column):
            if kind in _TRANSFORMS:
                y = int(rng.integers(1990, 2024))
                m = int(rng.integers(1, 13))
                d = int(rng.integers(1, 29))
                s, t = _TRANSFORMS[kind](y, m, d)
            elif kind in _NAME_TRANSFORMS:
                first = first_names[int(rng.integers(0, len(first_names)))]
                last = last_names[int(rng.integers(0, len(last_names)))]
                s, t = _NAME_TRANSFORMS[kind](first, last)
            else:
                a = int(rng.integers(200, 999))
                b = int(rng.integers(200, 999))
                c = int(rng.integers(1000, 9999))
                s, t = _PHONE_TRANSFORMS[kind](a, b, c)
            source.append(s)
            target.append(t)
        pairs.append(
            JoinableColumnPair(source=tuple(source), target=tuple(target), transform_name=kind)
        )
    rng.shuffle(pairs)
    return pairs
