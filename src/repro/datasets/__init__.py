"""repro.datasets — deterministic synthetic dataset generators.

Substitutes for the external datasets the paper's experiments use (see
DESIGN.md §2): a HotpotQA-like multi-hop QA set, a Spider-like NL2SQL
benchmark (including the paper's own Q1–Q5), entity-resolution pairs, a
column-type corpus, tabular data with missing labels, query/execution-time
workloads and an EMR-style multi-modal data lake.
"""

from repro.datasets.hotpot import QAExample, generate_hotpot
from repro.datasets.spider import (
    NLExample,
    build_concert_db,
    generate_nl2sql,
    paper_queries,
)
from repro.datasets.retail import build_retail_db, generate_retail_nl2sql
from repro.datasets.entities import ERPair, generate_er_pairs
from repro.datasets.columns import (
    ColumnExample,
    JoinableColumnPair,
    generate_column_corpus,
    generate_joinable_pairs,
)
from repro.datasets.tabular import TabularDataset, generate_patients
from repro.datasets.lake import LakeItem, generate_lake
from repro.datasets.workloads import QueryTimingExample, generate_timing_workload

__all__ = [
    "ColumnExample",
    "ERPair",
    "JoinableColumnPair",
    "LakeItem",
    "NLExample",
    "QAExample",
    "QueryTimingExample",
    "TabularDataset",
    "build_concert_db",
    "build_retail_db",
    "generate_column_corpus",
    "generate_er_pairs",
    "generate_hotpot",
    "generate_joinable_pairs",
    "generate_lake",
    "generate_nl2sql",
    "generate_patients",
    "generate_retail_nl2sql",
    "generate_timing_workload",
    "paper_queries",
]
