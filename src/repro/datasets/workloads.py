"""⟨query, execution_time⟩ workload generator (Fig 3 / Section II-A2).

Queries are generated over a populated database; each is timed with the
analytic cost model from :mod:`repro.sqldb.planner` plus bounded
deterministic noise — the substitute for the authors' measured DBMS (see
DESIGN.md §2). The feature extraction used in prompts is
:func:`repro.sqldb.planner.query_features`, so the learnable signal is a
genuine function of query structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro._util import rng_from, stable_hash
from repro.sqldb import Database, estimate_cost, query_features
from repro.sqldb.types import SQLType


@dataclass(frozen=True)
class QueryTimingExample:
    """One query with its features and measured execution time (ms)."""

    sql: str
    features: Dict[str, float]
    execution_time_ms: float

    def feature_line(self) -> str:
        """Render features for the value-prediction prompt format."""
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self.features.items()))
        return inner


def build_analytics_db(seed: int = 0, n_customers: int = 200, n_orders: int = 600) -> Database:
    """A two-table analytics schema used by the timing workload."""
    rng = rng_from(seed)
    db = Database()
    db.create_table(
        "customer",
        [
            ("customer_id", SQLType.INTEGER),
            ("name", SQLType.TEXT),
            ("region", SQLType.TEXT),
            ("age", SQLType.INTEGER),
        ],
        primary_key="customer_id",
    )
    db.create_table(
        "orders",
        [
            ("order_id", SQLType.INTEGER),
            ("customer_id", SQLType.INTEGER),
            ("amount", SQLType.REAL),
            ("year", SQLType.INTEGER),
        ],
        primary_key="order_id",
    )
    regions = ["north", "south", "east", "west"]
    for i in range(n_customers):
        db.insert_rows(
            "customer",
            [[i + 1, f"customer_{i + 1}", regions[int(rng.integers(0, 4))], int(rng.integers(18, 80))]],
        )
    for i in range(n_orders):
        db.insert_rows(
            "orders",
            [[i + 1, int(rng.integers(1, n_customers + 1)), round(float(rng.uniform(5, 500)), 2),
              int(rng.integers(2018, 2024))]],
        )
    return db


_TEMPLATES = [
    "SELECT name FROM customer WHERE age > {age}",
    "SELECT COUNT(*) FROM orders WHERE year = {year}",
    "SELECT region, COUNT(*) FROM customer GROUP BY region",
    "SELECT c.name, o.amount FROM customer c JOIN orders o ON c.customer_id = o.customer_id "
    "WHERE o.amount > {amount}",
    "SELECT c.region, SUM(o.amount) FROM customer c JOIN orders o ON c.customer_id = o.customer_id "
    "WHERE o.year = {year} GROUP BY c.region",
    "SELECT name FROM customer WHERE customer_id IN "
    "(SELECT customer_id FROM orders WHERE amount > {amount})",
    "SELECT name FROM customer c WHERE age > {age} ORDER BY name",
    "SELECT AVG(amount) FROM orders WHERE year = {year} AND amount > {amount}",
]


def generate_timing_workload(
    db: Database, n: int = 40, seed: int = 0, noise: float = 0.08
) -> List[QueryTimingExample]:
    """Generate ``n`` timed queries over ``db`` (deterministic)."""
    rng = rng_from(seed)
    out: List[QueryTimingExample] = []
    for i in range(n):
        template = _TEMPLATES[i % len(_TEMPLATES)]
        sql = template.format(
            age=int(rng.integers(20, 75)),
            year=int(rng.integers(2018, 2024)),
            amount=int(rng.integers(10, 450)),
        )
        base_ms = estimate_cost(sql, db.catalog).total_ms
        # Deterministic bounded noise keyed on the SQL text.
        jitter = ((stable_hash("timing:" + sql) % 10_000) / 10_000.0 * 2 - 1) * noise
        out.append(
            QueryTimingExample(
                sql=sql,
                features=query_features(sql, db.catalog),
                execution_time_ms=round(base_ms * (1 + jitter), 6),
            )
        )
    return out
