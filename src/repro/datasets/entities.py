"""Entity-resolution pair generator (Section II-C1 workload).

Base records are synthetic businesses with name/street/city/phone fields.
Positive pairs are the same record under realistic perturbations
(abbreviations, typos, dropped fields, reordered tokens); negatives pair
distinct records, with a share of *hard* negatives (same city and similar
names). Each pair records its ``hardness`` so benches can stratify accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro._util import rng_from

_NAME_HEADS = [
    "Riverside", "Summit", "Golden Gate", "Blue Sky", "Evergreen", "Lakeside",
    "Ironwood", "Redstone", "Silver Line", "Northern Star", "Cedar Hill", "Bright Path",
]
_NAME_TAILS = [
    "Consulting", "Logistics", "Hardware", "Bakery", "Analytics", "Pharmacy",
    "Motors", "Textiles", "Robotics", "Publishing", "Catering", "Optics",
]
_STREETS = ["Main Street", "Oak Avenue", "Harbor Road", "Mill Lane", "Station Drive", "Park Boulevard"]
_CITIES = ["Riverford", "Stoneport", "Greenburg", "Northville", "Goldhaven", "Westdale"]

_ABBREV = {
    "street": "St", "avenue": "Ave", "road": "Rd", "lane": "Ln",
    "drive": "Dr", "boulevard": "Blvd", "consulting": "Cons.",
    "incorporated": "Inc", "company": "Co",
}


@dataclass(frozen=True)
class ERPair:
    """Two serialized entity descriptions plus gold label."""

    a: str
    b: str
    label: bool  # True = same real-world entity
    hardness: str  # 'easy' | 'hard'


def _record(rng) -> Dict[str, str]:
    return {
        "name": f"{_NAME_HEADS[int(rng.integers(0, len(_NAME_HEADS)))]} "
        f"{_NAME_TAILS[int(rng.integers(0, len(_NAME_TAILS)))]}",
        "street": f"{int(rng.integers(1, 999))} {_STREETS[int(rng.integers(0, len(_STREETS)))]}",
        "city": _CITIES[int(rng.integers(0, len(_CITIES)))],
        "phone": f"{int(rng.integers(200, 999))}-{int(rng.integers(1000, 9999))}",
    }


def serialize_record(record: Dict[str, str]) -> str:
    return ", ".join(f"{k}: {v}" for k, v in record.items())


def _typo(text: str, rng) -> str:
    if len(text) < 4:
        return text
    pos = int(rng.integers(1, len(text) - 1))
    return text[:pos] + text[pos + 1 :]


def _perturb(record: Dict[str, str], rng, strength: float) -> Dict[str, str]:
    """Apply abbreviations / typos / drops; higher strength = more damage."""
    out = dict(record)
    # Abbreviate street and name words.
    if rng.random() < 0.8:
        words_out = []
        for word in out["street"].split():
            words_out.append(_ABBREV.get(word.lower(), word))
        out["street"] = " ".join(words_out)
    if rng.random() < strength:
        out["name"] = _typo(out["name"], rng)
    if rng.random() < strength:
        out["street"] = _typo(out["street"], rng)
    if rng.random() < strength * 0.7:
        out.pop("phone", None)
    if rng.random() < strength * 0.4:
        out.pop("city", None)
    return out


def generate_er_pairs(n: int = 100, seed: int = 0, positive_fraction: float = 0.5) -> List[ERPair]:
    """Generate ``n`` labeled pairs, half positive by default."""
    rng = rng_from(seed)
    records = [_record(rng) for _ in range(max(20, n))]
    pairs: List[ERPair] = []
    n_pos = int(round(n * positive_fraction))
    for i in range(n_pos):
        base = records[i % len(records)]
        strength = float(rng.uniform(0.1, 0.85))
        variant = _perturb(base, rng, strength)
        pairs.append(
            ERPair(
                a=serialize_record(base),
                b=serialize_record(variant),
                label=True,
                hardness="hard" if strength > 0.5 else "easy",
            )
        )
    while len(pairs) < n:
        i, j = int(rng.integers(0, len(records))), int(rng.integers(0, len(records)))
        if i == j:
            continue
        a, b = records[i], records[j]
        same_city = a["city"] == b["city"]
        similar_name = a["name"].split()[0] == b["name"].split()[0]
        hard = same_city and similar_name
        # Keep a share of hard negatives; skip most trivially-different ones
        # to stay near the decision boundary.
        if not hard and rng.random() < 0.4:
            continue
        pairs.append(
            ERPair(
                a=serialize_record(a),
                b=serialize_record(b),
                label=False,
                hardness="hard" if hard else "easy",
            )
        )
    rng.shuffle(pairs)
    return pairs[:n]
