"""Retail NL2SQL benchmark: the second registered question domain.

Customers place orders and file returns; questions mirror the stadium
grammar ("customers that placed orders in 2021 or filed returns in 2022"),
demonstrating that the NL2SQL stack — engine, decomposer, optimizer — is
domain-pluggable rather than hard-wired to the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro._util import rng_from
from repro.datasets.spider import NLExample
from repro.llm.engines.nl2sql import RETAIL_DOMAIN
from repro.sqldb import Database
from repro.sqldb.types import SQLType

YEARS = (2020, 2021, 2022, 2023)
EVENTS = ("orders", "returns")


def build_retail_db(seed: int = 0, n_customers: int = 20, n_events: int = 56) -> Database:
    """A populated customer/orders/returns database."""
    rng = rng_from(seed)
    db = Database()
    db.create_table(
        "customer",
        [
            ("customer_id", SQLType.INTEGER),
            ("name", SQLType.TEXT),
            ("segment", SQLType.TEXT),
        ],
        primary_key="customer_id",
    )
    db.create_table(
        "orders",
        [
            ("order_id", SQLType.INTEGER),
            ("customer_id", SQLType.INTEGER),
            ("amount", SQLType.REAL),
            ("year", SQLType.INTEGER),
        ],
        primary_key="order_id",
    )
    db.create_table(
        "returns",
        [
            ("return_id", SQLType.INTEGER),
            ("customer_id", SQLType.INTEGER),
            ("reason", SQLType.TEXT),
            ("year", SQLType.INTEGER),
        ],
        primary_key="return_id",
    )
    first = ["Ada", "Bruno", "Clara", "Diego", "Elena", "Felix", "Grace", "Henry", "Iris", "Jonas"]
    last = ["Marsh", "Okafor", "Petrov", "Quinn", "Reyes", "Sato", "Turner", "Ueda", "Voss", "Webb"]
    segments = ["consumer", "corporate", "home office"]
    for i in range(n_customers):
        name = f"{first[i % len(first)]} {last[(i // len(first) + i) % len(last)]}"
        if i >= len(first) * len(last):
            name += f" {i}"
        db.insert_rows(
            "customer", [[i + 1, name, segments[int(rng.integers(0, len(segments)))]]]
        )
    reasons = ["damaged", "wrong item", "late", "changed mind"]
    for i in range(n_events):
        customer = int(rng.integers(1, n_customers + 1))
        year = int(YEARS[int(rng.integers(0, len(YEARS)))])
        if rng.random() < 0.6:
            db.insert_rows(
                "orders", [[i + 1, customer, round(float(rng.uniform(10, 900)), 2), year]]
            )
        else:
            db.insert_rows(
                "returns",
                [[i + 1, customer, reasons[int(rng.integers(0, len(reasons)))], year]],
            )
    return db


def _atomic_sql(event_phrase: str, year: int, superlative: bool = False) -> str:
    event = RETAIL_DOMAIN.event_by_phrase(event_phrase)
    assert event is not None
    return RETAIL_DOMAIN.event_sql(event, str(year), superlative)


def _atomic_question(event_phrase: str, year: int, superlative: bool = False) -> str:
    event = RETAIL_DOMAIN.event_by_phrase(event_phrase)
    assert event is not None
    if superlative:
        return (
            f"What are the names of customers that {event.verb} the most number of "
            f"{event.phrase} in {year}?"
        )
    return f"What are the names of customers that {event.verb} {event.phrase} in {year}?"


def _compound(left: Tuple[str, int], right: Tuple[str, int], op: str) -> NLExample:
    (ev_l, y_l), (ev_r, y_r) = left, right
    event_l = RETAIL_DOMAIN.event_by_phrase(ev_l)
    event_r = RETAIL_DOMAIN.event_by_phrase(ev_r)
    assert event_l is not None and event_r is not None
    connectors = {
        "UNION": f"or {event_r.verb}",
        "INTERSECT": f"and {event_r.verb}",
        "EXCEPT": f"but did not {event_r.verb_neg}",
    }
    question = (
        f"What are the names of customers that {event_l.verb} {ev_l} in {y_l} "
        f"{connectors[op]} {ev_r} in {y_r}?"
    )
    gold = f"{_atomic_sql(ev_l, y_l)} {op} {_atomic_sql(ev_r, y_r)}"
    return NLExample(
        question=question,
        gold_sql=gold,
        category="compound",
        sub_questions=(_atomic_question(ev_l, y_l), _atomic_question(ev_r, y_r)),
        recompose_op=op,
    )


def generate_retail_nl2sql(
    n: int = 24, seed: int = 0, compound_fraction: float = 0.6
) -> List[NLExample]:
    """Generate a retail-domain NL2SQL workload (same shape as spider's)."""
    rng = rng_from(seed)
    atoms = [(event, year) for event in EVENTS for year in YEARS]
    examples: List[NLExample] = []
    ops = ("UNION", "INTERSECT", "EXCEPT")
    remaining_split = (1.0 - compound_fraction) / 2.0
    while len(examples) < n:
        roll = rng.random()
        if roll < compound_fraction:
            left = atoms[int(rng.integers(0, len(atoms)))]
            right = atoms[int(rng.integers(0, len(atoms)))]
            if left == right:
                continue
            examples.append(_compound(left, right, ops[int(rng.integers(0, len(ops)))]))
        elif roll < compound_fraction + remaining_split:
            event, year = atoms[int(rng.integers(0, len(atoms)))]
            examples.append(
                NLExample(
                    question=_atomic_question(event, year, superlative=True),
                    gold_sql=_atomic_sql(event, year, superlative=True),
                    category="superlative",
                )
            )
        else:
            event, year = atoms[int(rng.integers(0, len(atoms)))]
            examples.append(
                NLExample(
                    question=_atomic_question(event, year),
                    gold_sql=_atomic_sql(event, year),
                    category="atomic",
                )
            )
    return examples[:n]
