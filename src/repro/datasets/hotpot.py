"""HotpotQA-like multi-hop QA generator (Table I / Table III workload).

Questions come in the two HotpotQA families:

* **bridge** — two chained hops ("Who directed the film that starred X?");
  each carries its decomposition into two one-hop sub-questions, which is
  what the sub-query cache (Cache(A), Table III) stores;
* **comparison** — compare an attribute of two entities ("Who was born
  earlier, A or B?"), decomposable into two attribute lookups.

Generation only emits *unambiguous* questions (e.g. the actor in a bridge
question stars in exactly one film), so the gold answer equals the unique
KB derivation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro._util import rng_from
from repro.llm.knowledge import World


@dataclass(frozen=True)
class QAExample:
    """One QA item with gold answer and its decomposition."""

    question: str
    answer: str
    kind: str  # 'bridge' | 'comparison'
    sub_questions: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)
    # For comparisons: how to recombine sub-answers ('min_year' picks the
    # entity with the smaller year; 'max_value' the larger value).
    recompose: Optional[str] = None
    # Entities the comparison is about, aligned with sub_questions.
    operands: Tuple[str, ...] = field(default_factory=tuple)


def _bridge_candidates(world: World) -> List[QAExample]:
    kb = world.kb
    out: List[QAExample] = []

    star_count: Counter = Counter()
    for film in world.films:
        for fact in kb.query(subject=film, relation="starred"):
            star_count[fact.object] += 1

    for film in world.films:
        director = kb.one(film, "directed_by")
        if director is None:
            continue
        for fact in kb.query(subject=film, relation="starred"):
            actor = str(fact.object)
            if star_count[actor] != 1:
                continue
            out.append(
                QAExample(
                    question=f"Who directed the film that starred {actor}?",
                    answer=str(director),
                    kind="bridge",
                    sub_questions=(
                        (f"Which film starred {actor}?", film),
                        (f"Who directed {film}?", str(director)),
                    ),
                )
            )

    for person in world.people:
        city = kb.one(person, "born_in")
        if city is None:
            continue
        country = kb.one(str(city), "located_in")
        if country is None:
            continue
        out.append(
            QAExample(
                question=f"In which country is the city where {person} was born located?",
                answer=str(country),
                kind="bridge",
                sub_questions=(
                    (f"In which city was {person} born?", str(city)),
                    (f"In which country is {city} located?", str(country)),
                ),
            )
        )

    for person in world.people:
        team = kb.one(person, "plays_for")
        if team is None:
            continue
        city = kb.one(str(team), "based_in")
        sport = kb.one(str(team), "plays_sport")
        if city is not None:
            out.append(
                QAExample(
                    question=f"In which city is the team that {person} plays for based?",
                    answer=str(city),
                    kind="bridge",
                    sub_questions=(
                        (f"Which team does {person} play for?", str(team)),
                        (f"In which city is {team} based?", str(city)),
                    ),
                )
            )
        if sport is not None:
            out.append(
                QAExample(
                    question=f"What sport does the team that {person} plays for play?",
                    answer=str(sport),
                    kind="bridge",
                    sub_questions=(
                        (f"Which team does {person} play for?", str(team)),
                        (f"What sport does {team} play?", str(sport)),
                    ),
                )
            )
    return out


def _comparison_candidates(world: World, rng) -> List[QAExample]:
    kb = world.kb
    out: List[QAExample] = []

    people = list(world.people)
    rng.shuffle(people)
    for a, b in zip(people[0::2], people[1::2]):
        ya, yb = kb.one(a, "born_year"), kb.one(b, "born_year")
        if ya is None or yb is None or ya == yb:
            continue
        answer = a if ya < yb else b
        out.append(
            QAExample(
                question=f"Who was born earlier, {a} or {b}?",
                answer=answer,
                kind="comparison",
                sub_questions=(
                    (f"In which year was {a} born?", str(ya)),
                    (f"In which year was {b} born?", str(yb)),
                ),
                recompose="min_year",
                operands=(a, b),
            )
        )

    films = list(world.films)
    rng.shuffle(films)
    for f1, f2 in zip(films[0::2], films[1::2]):
        y1, y2 = kb.one(f1, "released_in"), kb.one(f2, "released_in")
        if y1 is None or y2 is None or y1 == y2:
            continue
        answer = f1 if y1 < y2 else f2
        out.append(
            QAExample(
                question=f"Which film was released first, {f1} or {f2}?",
                answer=answer,
                kind="comparison",
                sub_questions=(
                    (f"In which year was {f1} released?", str(y1)),
                    (f"In which year was {f2} released?", str(y2)),
                ),
                recompose="min_year",
                operands=(f1, f2),
            )
        )
    return out


def generate_hotpot(
    world: World,
    n: int = 40,
    seed: int = 0,
    bridge_fraction: float = 0.7,
) -> List[QAExample]:
    """Sample ``n`` unambiguous QA examples (~70% bridge by default)."""
    rng = rng_from(seed)
    bridges = _bridge_candidates(world)
    comparisons = _comparison_candidates(world, rng)
    rng.shuffle(bridges)
    n_bridge = min(len(bridges), int(round(n * bridge_fraction)))
    n_comparison = min(len(comparisons), n - n_bridge)
    picked = bridges[:n_bridge] + comparisons[:n_comparison]
    # Top up with whichever pool has leftovers.
    deficit = n - len(picked)
    if deficit > 0:
        leftovers = bridges[n_bridge:] + comparisons[n_comparison:]
        picked.extend(leftovers[:deficit])
    rng.shuffle(picked)
    return picked


def _entity_passage(world: World, entity: str) -> Optional[str]:
    """One encyclopedia-style paragraph about an entity, from KB facts."""
    kb = world.kb
    facts = kb.query(subject=entity)
    if not facts:
        return None
    clauses = [f"its {f.relation.replace('_', ' ')} is {f.object}" for f in facts[:5]]
    return f"{entity}: " + "; ".join(clauses) + "."


def context_passages(
    world: World, question: str, n_distractors: int = 6, seed: int = 0
) -> List[str]:
    """Supporting + distractor passages for a question (HotpotQA style).

    Real HotpotQA prompts carry ~10 paragraphs of context; reproducing that
    prompt size is what makes the Table I/III dollar costs land in the
    paper's magnitude range. Passages are built from KB facts: the
    question's entities (supporting) plus random others (distractors)."""
    rng = rng_from(f"context|{seed}|{question}")
    passages: List[str] = []
    mentioned = [e for e in world.people + world.films + world.teams + world.cities
                 if e in question]
    for entity in mentioned:
        passage = _entity_passage(world, entity)
        if passage:
            passages.append(passage)
    pool = world.people + world.films + world.teams
    picks = rng.choice(len(pool), size=min(n_distractors, len(pool)), replace=False)
    for i in picks:
        passage = _entity_passage(world, pool[int(i)])
        if passage and passage not in passages:
            passages.append(passage)
    rng.shuffle(passages)
    return passages


_PARAPHRASES = [
    # (canonical pattern, paraphrase template)
    (r"^Who directed the film that starred (.+?)\?$", "The film starring {0} was directed by whom?"),
    (
        r"^In which country is the city where (.+?) was born located\?$",
        "The city where {0} was born is located in which country?",
    ),
    (
        r"^In which city is the team that (.+?) plays for based\?$",
        "The team that {0} plays for is based in which city?",
    ),
    (
        r"^What sport does the team that (.+?) plays for play\?$",
        "Which sport is played by the team that {0} plays for?",
    ),
    (r"^Who was born earlier, (.+?) or (.+?)\?$", "Between {0} and {1}, who was born earlier?"),
    (
        r"^Which film was released first, (.+?) or (.+?)\?$",
        "Between {0} and {1}, which film was released first?",
    ),
]


def paraphrase(question: str) -> str:
    """A meaning-preserving re-phrasing of a canonical question.

    Used by the Table III cache experiment: the second round of queries
    arrives re-phrased, so semantic (not exact) matching is what gets
    exercised. Returns the question unchanged when no template applies.
    """
    import re as _re

    for pattern, template in _PARAPHRASES:
        m = _re.match(pattern, question.strip())
        if m:
            return template.format(*[g.strip() for g in m.groups()])
    return question


def recompose_comparison(example: QAExample, sub_answers: List[str]) -> Optional[str]:
    """Combine sub-question answers back into the comparison answer."""
    if example.recompose != "min_year" or len(sub_answers) != 2:
        return None
    try:
        values = [float(a) for a in sub_answers]
    except ValueError:
        return None
    return example.operands[0] if values[0] <= values[1] else example.operands[1]
