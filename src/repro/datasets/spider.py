"""Spider-like NL2SQL benchmark: the paper's stadium/concert domain.

The paper's Section III-B1 examples Q1–Q5 are Spider ``concert_singer``
queries; :func:`paper_queries` returns them verbatim. :func:`generate_nl2sql`
produces a larger workload in the same grammar with deliberately overlapping
sub-queries (the property query decomposition exploits, Fig 7).

Gold SQL executes on :func:`build_concert_db`; evaluation is execution
accuracy (result-set equality), so any semantically correct SQL counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro._util import rng_from
from repro.sqldb import Database
from repro.sqldb.types import SQLType

YEARS = (2013, 2014, 2015, 2016)
EVENTS = ("concerts", "sports meetings")

_EVENT_TABLE = {"concerts": "concert", "sports meetings": "sports_meeting"}


@dataclass(frozen=True)
class NLExample:
    """One NL question with gold SQL and its decomposition structure."""

    question: str
    gold_sql: str
    category: str  # 'atomic' | 'superlative' | 'compound'
    # Atomic NL sub-questions (for compound queries) and how to recombine.
    sub_questions: Tuple[str, ...] = field(default_factory=tuple)
    recompose_op: Optional[str] = None  # 'UNION' | 'INTERSECT' | 'EXCEPT'


# ---------------------------------------------------------------- database


def build_concert_db(seed: int = 0, n_stadiums: int = 20, n_events: int = 56) -> Database:
    """A populated stadium/concert/sports_meeting database."""
    rng = rng_from(seed)
    db = Database()
    db.create_table(
        "stadium",
        [
            ("stadium_id", SQLType.INTEGER),
            ("name", SQLType.TEXT),
            ("location", SQLType.TEXT),
            ("capacity", SQLType.INTEGER),
        ],
        primary_key="stadium_id",
    )
    db.create_table(
        "concert",
        [
            ("concert_id", SQLType.INTEGER),
            ("concert_name", SQLType.TEXT),
            ("stadium_id", SQLType.INTEGER),
            ("year", SQLType.INTEGER),
        ],
        primary_key="concert_id",
    )
    db.create_table(
        "sports_meeting",
        [
            ("meeting_id", SQLType.INTEGER),
            ("meeting_name", SQLType.TEXT),
            ("stadium_id", SQLType.INTEGER),
            ("year", SQLType.INTEGER),
        ],
        primary_key="meeting_id",
    )
    locations = ["North District", "South District", "East Side", "West Side", "Harbor"]
    stadium_names = [
        "Apollo Arena", "Beacon Field", "Crescent Dome", "Delta Park", "Echo Grounds",
        "Falcon Bowl", "Granite Court", "Horizon Stadium", "Ivory Hall", "Juno Garden",
        "Keystone Yard", "Lyra Pavilion",
    ]
    for i in range(n_stadiums):
        base_name = stadium_names[i % len(stadium_names)]
        name = base_name if i < len(stadium_names) else f"{base_name} {i // len(stadium_names) + 1}"
        db.insert_rows(
            "stadium",
            [[i + 1, name, locations[int(rng.integers(0, len(locations)))],
              int(rng.integers(5, 90)) * 1000]],
        )
    for i in range(n_events):
        stadium = int(rng.integers(1, n_stadiums + 1))
        year = int(YEARS[int(rng.integers(0, len(YEARS)))])
        if rng.random() < 0.55:
            db.insert_rows("concert", [[i + 1, f"Concert {i + 1}", stadium, year]])
        else:
            db.insert_rows("sports_meeting", [[i + 1, f"Meeting {i + 1}", stadium, year]])
    return db


# ------------------------------------------------------------------- gold SQL


def _atomic_sql(event: str, year: int, superlative: bool = False) -> str:
    table = _EVENT_TABLE[event]
    alias = "e"
    if superlative:
        return (
            f"SELECT s.name FROM stadium s JOIN {table} {alias} "
            f"ON s.stadium_id = {alias}.stadium_id WHERE {alias}.year = {year} "
            f"GROUP BY s.name ORDER BY COUNT(*) DESC LIMIT 1"
        )
    return (
        f"SELECT DISTINCT s.name FROM stadium s JOIN {table} {alias} "
        f"ON s.stadium_id = {alias}.stadium_id WHERE {alias}.year = {year}"
    )


def _atomic_question(event: str, year: int, superlative: bool = False) -> str:
    if superlative:
        return f"What are the names of stadiums that had the most number of {event} in {year}?"
    return f"What are the names of stadiums that had {event} in {year}?"


def _compound(
    left: Tuple[str, int], right: Tuple[str, int], op: str, lead: str = "What are"
) -> NLExample:
    connectors = {"UNION": "or had", "INTERSECT": "and had", "EXCEPT": "but did not have"}
    (ev_l, y_l), (ev_r, y_r) = left, right
    question = (
        f"{lead} the names of stadiums that had {ev_l} in {y_l} "
        f"{connectors[op]} {ev_r} in {y_r}?"
    )
    gold = f"{_atomic_sql(ev_l, y_l)} {op} {_atomic_sql(ev_r, y_r)}"
    return NLExample(
        question=question,
        gold_sql=gold,
        category="compound",
        sub_questions=(_atomic_question(ev_l, y_l), _atomic_question(ev_r, y_r)),
        recompose_op=op,
    )


def paper_queries() -> List[NLExample]:
    """The paper's Q1–Q5 (Section III-B1), in order."""
    concerts_2014 = ("concerts", 2014)
    meetings_2015 = ("sports meetings", 2015)
    q1 = _compound(concerts_2014, meetings_2015, "UNION")
    q2 = NLExample(
        question="What are the names of stadiums that had the most number of concerts in 2014?",
        gold_sql=_atomic_sql("concerts", 2014, superlative=True),
        category="superlative",
    )
    q3 = NLExample(
        question="Show the names of stadiums that had the most number of sports meetings in 2015?",
        gold_sql=_atomic_sql("sports meetings", 2015, superlative=True),
        category="superlative",
    )
    q4 = _compound(concerts_2014, meetings_2015, "INTERSECT", lead="Show")
    q5 = _compound(concerts_2014, meetings_2015, "EXCEPT", lead="Show")
    return [q1, q2, q3, q4, q5]


def generate_nl2sql(
    n: int = 24,
    seed: int = 0,
    include_paper: bool = True,
    compound_fraction: float = 0.6,
) -> List[NLExample]:
    """Generate an NL2SQL workload with overlapping sub-queries.

    Uses a small pool of (event, year) atoms so that compound questions
    share sub-queries — the overlap query decomposition exploits. By
    default roughly 60% compound, 20% superlative, 20% atomic; the paper's
    own crafted set is decomposition-heavy, so Table II uses a higher
    ``compound_fraction``.
    """
    rng = rng_from(seed)
    atoms = [(event, year) for event in EVENTS for year in YEARS]
    examples: List[NLExample] = list(paper_queries()) if include_paper else []
    ops = ("UNION", "INTERSECT", "EXCEPT")
    remaining_split = (1.0 - compound_fraction) / 2.0
    while len(examples) < n:
        roll = rng.random()
        if roll < compound_fraction:
            left = atoms[int(rng.integers(0, len(atoms)))]
            right = atoms[int(rng.integers(0, len(atoms)))]
            if left == right:
                continue
            op = ops[int(rng.integers(0, len(ops)))]
            lead = "Show" if rng.random() < 0.5 else "What are"
            examples.append(_compound(left, right, op, lead=lead))
        elif roll < compound_fraction + remaining_split:
            event, year = atoms[int(rng.integers(0, len(atoms)))]
            examples.append(
                NLExample(
                    question=_atomic_question(event, year, superlative=True),
                    gold_sql=_atomic_sql(event, year, superlative=True),
                    category="superlative",
                )
            )
        else:
            event, year = atoms[int(rng.integers(0, len(atoms)))]
            examples.append(
                NLExample(
                    question=_atomic_question(event, year),
                    gold_sql=_atomic_sql(event, year),
                    category="atomic",
                )
            )
    return examples[:n]


def execution_match(db: Database, predicted_sql: str, gold_sql: str) -> bool:
    """Execution accuracy: both queries run and return the same row multiset
    (order-insensitive). A failing predicted query counts as a miss."""
    from repro.errors import SQLError

    try:
        predicted = db.execute(predicted_sql).rows
    except SQLError:
        return False
    gold = db.execute(gold_sql).rows
    return sorted(map(repr, predicted)) == sorted(map(repr, gold))
