"""EMR-style multi-modal data lake generator (Sections II-D1, III-B2).

Items span three modalities: free-text documents, relational table rows and
"images" (caption + feature vector — we cannot ship pixels offline, but the
lake only ever touches the embedding, so a captioned feature vector
exercises the identical code path).

The generator plants the paper's ambiguity scenario: a famous basketball
player and a professor sharing the same name ("Michael Jordan"), so that
pure vector search confuses them and attribute filtering (entity_type)
resolves the query — exactly the Section III-B2 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._util import rng_from
from repro.llm.knowledge import World


@dataclass(frozen=True)
class LakeItem:
    """One item in the multi-modal lake."""

    item_id: str
    modality: str  # 'text' | 'table' | 'image'
    content: str  # text body / rendered row / image caption
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def embedding_text(self) -> str:
        """The text surrogate used to place this item in the joint space."""
        return self.content


def _person_doc(world: World, person: str, rng) -> Optional[str]:
    kb = world.kb
    profession = kb.one(person, "profession")
    city = kb.one(person, "born_in")
    year = kb.one(person, "born_year")
    if profession is None or city is None:
        return None
    extra = ""
    if profession == "athlete":
        team = kb.one(person, "plays_for")
        if team is not None:
            sport = kb.one(str(team), "plays_sport")
            extra = f" They play {str(sport).lower()} for the {team}."
    elif profession == "actor":
        films = kb.subjects_with("starred", person)
        if films:
            extra = f" They starred in {films[0]}."
    elif profession == "director":
        films = kb.subjects_with("directed_by", person)
        if films:
            extra = f" They directed {films[0]}."
    return (
        f"{person} is a {profession} born in {city} in {year}.{extra}"
    )


def generate_lake(world: World, seed: int = 0, n_docs: int = 30, n_rows: int = 30, n_images: int = 20) -> List[LakeItem]:
    """Build the multi-modal lake, including the name-collision scenario."""
    rng = rng_from(seed)
    items: List[LakeItem] = []

    # Text documents about people.
    people = list(world.people)
    rng.shuffle(people)
    count = 0
    for person in people:
        if count >= n_docs:
            break
        doc = _person_doc(world, person, rng)
        if doc is None:
            continue
        profession = world.kb.one(person, "profession")
        items.append(
            LakeItem(
                item_id=f"doc-{count}",
                modality="text",
                content=doc,
                metadata={"entity": person, "entity_type": str(profession), "source": "biography"},
            )
        )
        count += 1

    # Table rows about teams (rendered as serialized relational rows).
    for i, team in enumerate(world.teams[: n_rows // 2]):
        kb = world.kb
        city = kb.one(team, "based_in")
        sport = kb.one(team, "plays_sport")
        founded = kb.one(team, "founded_in")
        items.append(
            LakeItem(
                item_id=f"row-team-{i}",
                modality="table",
                content=f"team: {team}; city: {city}; sport: {sport}; founded: {founded}",
                metadata={"entity": team, "entity_type": "team", "table": "teams"},
            )
        )
    for i, film in enumerate(world.films[: n_rows - n_rows // 2]):
        kb = world.kb
        director = kb.one(film, "directed_by")
        year = kb.one(film, "released_in")
        items.append(
            LakeItem(
                item_id=f"row-film-{i}",
                modality="table",
                content=f"film: {film}; director: {director}; released: {year}",
                metadata={"entity": film, "entity_type": "film", "table": "films"},
            )
        )

    # "Images": captioned feature items about cities and stadium events.
    for i, city in enumerate(world.cities[:n_images]):
        country = world.kb.one(city, "located_in")
        items.append(
            LakeItem(
                item_id=f"img-{i}",
                modality="image",
                content=f"A photograph of the skyline of {city}, {country}.",
                metadata={"entity": city, "entity_type": "city", "format": "jpeg"},
            )
        )

    # The paper's ambiguity scenario (Section III-B2), verbatim entities.
    items.append(
        LakeItem(
            item_id="doc-jordan-player",
            modality="text",
            content=(
                "Michael Jordan, the greatest basketball player of all time, "
                "found the secret to success."
            ),
            metadata={"entity": "Michael Jordan", "entity_type": "athlete", "source": "news"},
        )
    )
    items.append(
        LakeItem(
            item_id="row-jordan-professor",
            modality="table",
            content=(
                "professor: Michael Jordan; department: Computer Science; "
                "university: Berkeley; field: machine learning"
            ),
            metadata={"entity": "Michael Jordan", "entity_type": "professor", "table": "professors"},
        )
    )
    return items
