"""Tabular data with missing labels + synthetic data generation (II-A2).

``generate_patients`` builds the paper's healthcare-flavored example: a
patient table whose ``risk`` label follows a deterministic clinical rule
plus bounded noise. A fraction of labels is masked — the missing-field
annotation task. ``TabularDataset.synthesize`` fits per-column samplers and
emits a privacy-friendlier synthetic table that mimics the marginals (the
"generate synthetic datasets that mimic the characteristics" application).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import rng_from


@dataclass
class TabularDataset:
    """Rows of dicts with a designated label column (None = missing)."""

    columns: List[str]
    rows: List[Dict[str, object]]
    label_column: str

    def labeled_rows(self) -> List[Dict[str, object]]:
        return [r for r in self.rows if r.get(self.label_column) is not None]

    def unlabeled_rows(self) -> List[Dict[str, object]]:
        return [r for r in self.rows if r.get(self.label_column) is None]

    def serialize_row(self, row: Dict[str, object]) -> str:
        """"attribute: value; ..." — the paper's row serialization."""
        pieces = []
        for column in self.columns:
            value = row.get(column)
            pieces.append(f"{column}: {'?' if value is None else value}")
        return "; ".join(pieces)

    # ------------------------------------------------------------ synthesis

    def synthesize(self, n: int, seed: int = 0) -> "TabularDataset":
        """Generate ``n`` synthetic rows mimicking per-column marginals.

        Numeric columns are sampled from a fitted normal (clipped to the
        observed range); categorical columns from the empirical frequency
        table. Labels are re-derived from the sampled feature marginals by
        nearest labeled neighbor so the feature→label association survives.
        """
        rng = rng_from(seed)
        labeled = self.labeled_rows()
        if not labeled:
            raise ValueError("cannot synthesize from a dataset with no labels")
        features = [c for c in self.columns if c != self.label_column]

        samplers = {}
        for column in features:
            values = [r[column] for r in labeled if r.get(column) is not None]
            numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
            if numeric and len(numeric) == len(values):
                mean = float(np.mean(numeric))
                std = float(np.std(numeric)) or 1.0
                lo, hi = min(numeric), max(numeric)
                is_int = all(isinstance(v, int) for v in numeric)

                def numeric_sampler(mean=mean, std=std, lo=lo, hi=hi, is_int=is_int):
                    value = float(np.clip(rng.normal(mean, std), lo, hi))
                    return int(round(value)) if is_int else round(value, 3)

                samplers[column] = numeric_sampler
            else:
                counts = Counter(values)
                choices = list(counts)
                weights = np.array([counts[c] for c in choices], dtype=float)
                weights /= weights.sum()

                def categorical_sampler(choices=choices, weights=weights):
                    return choices[int(rng.choice(len(choices), p=weights))]

                samplers[column] = categorical_sampler

        def nearest_label(row: Dict[str, object]) -> object:
            def distance(other: Dict[str, object]) -> float:
                d = 0.0
                for column in features:
                    a, b = row.get(column), other.get(column)
                    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                        d += abs(float(a) - float(b))
                    elif a != b:
                        d += 1.0
                return d

            return min(labeled, key=distance)[self.label_column]

        synthetic_rows = []
        for _i in range(n):
            row = {column: samplers[column]() for column in features}
            row[self.label_column] = nearest_label(row)
            synthetic_rows.append(row)
        return TabularDataset(columns=list(self.columns), rows=synthetic_rows, label_column=self.label_column)


def _risk_rule(age: int, bmi: float, smoker: str, blood_pressure: int) -> str:
    """Deterministic clinical-style rule behind the gold labels."""
    score = 0
    if age >= 60:
        score += 2
    elif age >= 45:
        score += 1
    if bmi >= 30:
        score += 2
    elif bmi >= 25:
        score += 1
    if smoker == "yes":
        score += 2
    if blood_pressure >= 140:
        score += 2
    elif blood_pressure >= 125:
        score += 1
    return "high" if score >= 4 else ("medium" if score >= 2 else "low")


def generate_patients(
    n: int = 80,
    seed: int = 0,
    missing_fraction: float = 0.25,
    noise: float = 0.05,
) -> TabularDataset:
    """Patient rows with a rule-derived ``risk`` label, a fraction masked."""
    rng = rng_from(seed)
    rows: List[Dict[str, object]] = []
    for i in range(n):
        age = int(rng.integers(20, 85))
        bmi = round(float(rng.uniform(17.0, 38.0)), 1)
        smoker = "yes" if rng.random() < 0.3 else "no"
        blood_pressure = int(rng.integers(95, 170))
        label = _risk_rule(age, bmi, smoker, blood_pressure)
        if rng.random() < noise:
            label = {"low": "medium", "medium": "high", "high": "medium"}[label]
        rows.append(
            {
                "patient_id": i + 1,
                "age": age,
                "bmi": bmi,
                "smoker": smoker,
                "blood_pressure": blood_pressure,
                "risk": label,
            }
        )
    n_missing = int(round(n * missing_fraction))
    mask_idx = rng.choice(n, size=n_missing, replace=False)
    gold = {}
    for idx in mask_idx:
        gold[int(idx)] = rows[int(idx)]["risk"]
        rows[int(idx)]["risk"] = None
    dataset = TabularDataset(
        columns=["patient_id", "age", "bmi", "smoker", "blood_pressure", "risk"],
        rows=rows,
        label_column="risk",
    )
    # Stash the gold labels for evaluation (not visible via serialization).
    dataset.hidden_labels = gold  # type: ignore[attr-defined]
    return dataset
