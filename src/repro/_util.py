"""Small shared helpers: seeding, text normalization, stable hashing.

These utilities are deliberately dependency-free (numpy aside) and pure, so
that every subsystem that uses them stays deterministic and easy to test.
"""

from __future__ import annotations

import hashlib
import math
import re
from typing import Iterable, List, Sequence

import numpy as np

_WORD_RE = re.compile(r"[A-Za-z0-9_']+")


def stable_hash(text: str, *, bits: int = 64) -> int:
    """Return a platform-stable non-negative hash of ``text``.

    Python's builtin :func:`hash` is randomized per process; experiments need
    hashes that are identical across runs, so we use blake2b.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=16).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


def rng_from(seed: object) -> np.random.Generator:
    """Build a numpy Generator from any hashable seed material."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, int):
        return np.random.default_rng(seed)
    return np.random.default_rng(stable_hash(str(seed), bits=63))


def normalize_text(text: str) -> str:
    """Lowercase and collapse whitespace — used for fuzzy text comparison."""
    return " ".join(text.lower().split())


def words(text: str) -> List[str]:
    """Extract word tokens (letters, digits, underscore, apostrophe)."""
    return _WORD_RE.findall(text)


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (1.0 when both empty)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance; O(len(a)*len(b)) dynamic program."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_ratio(a: str, b: str) -> float:
    """Normalized edit similarity in [0, 1]."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def cosine(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity of two equal-length vectors (0.0 for zero vectors)."""
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    na = float(np.linalg.norm(va))
    nb = float(np.linalg.norm(vb))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(va, vb) / (na * nb))


def softmax(xs: Sequence[float]) -> List[float]:
    """Numerically stable softmax."""
    if not xs:
        return []
    m = max(xs)
    exps = [math.exp(x - m) for x in xs]
    total = sum(exps)
    return [e / total for e in exps]


def chunked(items: Sequence, size: int) -> List[Sequence]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    return [items[i : i + size] for i in range(0, len(items), size)]
