"""The append-only write-ahead journal: one JSON record per line.

Records carry a monotonically increasing ``seq`` so replay can detect
gaps, and the reader tolerates a *torn tail*: a crash mid-append leaves at
most one partial final line, which is discarded (the request it described
was never acknowledged, so dropping it is exactly the right recovery).

Appends are flushed to the OS on every record; ``sync=True`` additionally
fsyncs each append (real-crash durability at a real latency price — the
simulated crash tests don't kill the process, so the default is the cheap
flush).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class Journal:
    """An append-only log of JSON records with sequence numbers."""

    def __init__(self, path: str, *, sync: bool = False) -> None:
        self.path = path
        self.sync = sync
        self._handle = None
        # Resume the sequence from whatever already survives on disk.
        self._next_seq = len(self.records())

    # --------------------------------------------------------------- writing

    def _ensure_open(self):
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path)) or "."
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: Dict[str, object]) -> int:
        """Append one record; returns its sequence number."""
        seq = self._next_seq
        payload = dict(record)
        payload["seq"] = seq
        handle = self._ensure_open()
        handle.write(json.dumps(payload) + "\n")
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        self._next_seq = seq + 1
        return seq

    def clear(self) -> None:
        """Truncate the journal (after a checkpoint has absorbed it)."""
        self.close()
        if os.path.exists(self.path):
            os.unlink(self.path)
        self._next_seq = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # --------------------------------------------------------------- reading

    def __len__(self) -> int:
        return self._next_seq

    def records(self) -> List[Dict[str, object]]:
        """All intact records, in append order; a torn tail is dropped.

        A torn line can only be the *last* one (appends are sequential), so
        the first undecodable line ends the replay; anything after it would
        be unreachable garbage and raising would make recovery impossible,
        which is the one thing a journal must never do.
        """
        if not os.path.exists(self.path):
            return []
        out: List[Dict[str, object]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError:
                    break  # torn tail from a crash mid-append
                if not isinstance(record, dict):
                    break
                out.append(record)
        return out

    def last_seq(self) -> Optional[int]:
        """Sequence number of the newest intact record (None when empty)."""
        return self._next_seq - 1 if self._next_seq > 0 else None
