"""repro.durability — snapshot + write-ahead-journal persistence.

Everything stateful in the serving tier — the
:class:`~repro.core.cache.SemanticCache`, the
:class:`~repro.llm.client.UsageMeter` and budget ledgers, the
:class:`~repro.serving.stats.ServiceStats` counters — lives in memory; a
process restart loses all of it. This package makes that state *durable
data* (the paper's data-management framing applied to the serving layer
itself): a versioned JSON snapshot plus an append-only request journal,
with a recovery procedure that is **bit-identical replay**.

The design leans on the library's determinism contract instead of logging
physical state deltas:

* A **snapshot** (``snapshot.json``, written atomically) captures the full
  logical state of the stack's stateful components at a checkpoint.
  Embeddings are *not* stored — they are pure functions of the cached text
  and are re-derived on restore.
* The **journal** (``journal.log``) appends one record per completed
  request — just the request itself (prompt, model), not its effects.
  Because every component downstream of a request is deterministic,
  *re-executing* the journaled requests against the restored snapshot
  reproduces the exact pre-crash state: same cache entries and clock, same
  ledgers, same stats, bit for bit.
* A request that crashed mid-flight was never journaled, so its partial
  effects (a cache-probe clock tick, say) are simply discarded by
  recovery; the caller re-issues it and gets the exact completion the
  uncrashed run would have produced.

:class:`StackDurability` wires the two into a
:class:`~repro.serving.stack.ServingStack` (see
``build_stack(durable_dir=...)``), and
:class:`~repro.apps.runner.CheckpointedRunner` builds a resumable batch
pipeline on the same journal machinery.
"""

from repro.durability.atomic import atomic_write_json, atomic_write_text
from repro.durability.journal import Journal
from repro.durability.snapshot import (
    SNAPSHOT_SCHEMA,
    comparable_state,
    completion_from_dict,
    completion_to_dict,
    restore_cache_into,
    restore_meter_into,
    restore_stack_state,
    restore_stats_into,
    snapshot_cache,
    snapshot_meter,
    snapshot_stack_state,
    snapshot_stats,
)
from repro.durability.store import DurableStateStore, StackDurability

__all__ = [
    "DurableStateStore",
    "Journal",
    "SNAPSHOT_SCHEMA",
    "StackDurability",
    "atomic_write_json",
    "atomic_write_text",
    "comparable_state",
    "completion_from_dict",
    "completion_to_dict",
    "restore_cache_into",
    "restore_meter_into",
    "restore_stack_state",
    "restore_stats_into",
    "snapshot_cache",
    "snapshot_meter",
    "snapshot_stack_state",
    "snapshot_stats",
]
