"""Atomic file writes: a crash can never leave a torn file behind.

The pattern is the standard one: write the full payload to a temporary
file in the *same directory* as the target (so the final rename never
crosses a filesystem boundary), flush and fsync it, then ``os.replace``
over the target. POSIX rename is atomic, so any reader — including a
recovery pass after a crash at any instant — sees either the complete old
file or the complete new file, never a prefix of the new one.

This module is dependency-free on purpose: the vector store, the
durability snapshots and the checkpoint runner all write through it, and
none of them should drag the rest of the library into an import cycle.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional


def atomic_write_text(path: str, text: str, *, sync: bool = True) -> None:
    """Write ``text`` to ``path`` atomically (tempfile + ``os.replace``).

    With ``sync=True`` (the default) the temporary file is fsynced before
    the rename, so the rename can never publish a file whose blocks are
    still in flight.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave the temp file behind; the target is untouched.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str,
    obj: object,
    *,
    indent: Optional[int] = None,
    sort_keys: bool = False,
    sync: bool = True,
) -> None:
    """Serialize ``obj`` to JSON and write it atomically.

    Serialization happens *before* any file is touched, so a
    non-serializable object cannot even produce a temp file, let alone a
    torn target.
    """
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    atomic_write_text(path, text, sync=sync)
