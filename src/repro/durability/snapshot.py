"""Versioned snapshot codecs for the stateful serving components.

Three components hold serving state worth surviving a restart, and each
gets a ``snapshot_*`` / ``restore_*_into`` pair:

* :class:`~repro.core.cache.SemanticCache` — entries (with hit counters,
  LRFU clock values and insertion order), aggregate stats, the eviction
  clock, and the admission predictor's ring when one is attached.
  **Embeddings are not stored**: the embedding model is a pure function of
  the text, so restore re-embeds each key and provably reproduces the
  original vectors bit for bit.
* :class:`~repro.llm.client.UsageMeter` — totals and the per-model ledger.
* :class:`~repro.serving.stats.ServiceStats` — every counter, including
  the latency histogram's buckets.

All payloads are plain JSON. Python's ``json`` round-trips floats through
``repr`` (shortest exact representation), so every float restores to the
identical IEEE-754 double — the bit-identity the recovery benchmark
asserts end to end.

:func:`snapshot_stack_state` / :func:`restore_stack_state` lift the codecs
to a whole :class:`~repro.serving.stack.ServingStack` by walking its
middleware chain (``provider.inner…``) and snapshotting whichever stateful
layers are installed, plus the cache middleware's completion replay store
and the budget middleware's dollar ledger.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.cache import AdmissionPredictor, CacheEntry, CacheStats, SemanticCache
from repro.llm.client import Completion, Usage, UsageMeter
from repro.serving.stats import LatencyHistogram, ServiceStats

SNAPSHOT_SCHEMA = "repro.durability/v1"

_CACHE_STATS_FIELDS = (
    "lookups",
    "reuse_hits",
    "augment_hits",
    "misses",
    "evictions",
    "cost_saved",
)
_ENTRY_FIELDS = (
    "key",
    "response",
    "kind",
    "cost_of_miss",
    "reuse_hits",
    "augment_hits",
    "last_access",
    "inserted_at",
    "crf",
    "crf_updated_at",
)
_METER_FIELDS = ("calls", "prompt_tokens", "completion_tokens", "cost")
# ServiceStats fields that are not counters (or not serializable).
# Histogram fields are serialized explicitly (see snapshot_stats).
_STATS_SKIP = ("_lock", "_reset_hooks", "latency_hist", "gateway_queue_wait_hist")
# Dict-valued stats fields whose keys are ints (JSON forces string keys).
_STATS_INT_KEYS = ("scheduler_batch_sizes", "scheduler_queue_depths")


# ============================================================== SemanticCache


def snapshot_cache(cache: SemanticCache) -> Dict[str, object]:
    """Serializable snapshot of a cache's full logical state.

    Flushes the cache's write-behind put buffer first, so a snapshot never
    observes (or strands) half-materialized entries: every entry it
    records is embedded and indexed exactly as a probe would see it."""
    with cache._lock:
        cache._flush_puts()
        entries = [
            {field: getattr(entry, field) for field in _ENTRY_FIELDS}
            for entry in cache.entries.values()
        ]
        data: Dict[str, object] = {
            "capacity": cache.capacity,
            "reuse_threshold": cache.reuse_threshold,
            "augment_threshold": cache.augment_threshold,
            "policy": cache.policy.value,
            "lrfu_lambda": cache.lrfu_lambda,
            "embedding_dim": cache.embedder.dim,
            "clock": cache._clock,
            "admission_rejects": cache.admission_rejects,
            "stats": {field: getattr(cache.stats, field) for field in _CACHE_STATS_FIELDS},
            "entries": entries,
        }
        if cache.admission is not None:
            data["admission"] = _snapshot_admission(cache.admission)
    return data


def _snapshot_admission(predictor: AdmissionPredictor) -> Dict[str, object]:
    with predictor._lock:
        live = min(predictor._count, predictor.history)
        return {
            "history": predictor.history,
            "similarity_threshold": predictor.similarity_threshold,
            "admit_subqueries": predictor.admit_subqueries,
            "embedding_dim": predictor.embedder.dim,
            "count": predictor._count,
            "next": predictor._next,
            "rows": [[float(v) for v in predictor._ring[i]] for i in range(live)],
        }


def _restore_admission(predictor: AdmissionPredictor, data: Dict[str, object]) -> None:
    import numpy as np

    if int(data["history"]) != predictor.history or int(data["embedding_dim"]) != predictor.embedder.dim:
        raise ValueError(
            "admission snapshot was taken with a different history/dim "
            f"({data['history']}/{data['embedding_dim']} vs "
            f"{predictor.history}/{predictor.embedder.dim})"
        )
    with predictor._lock:
        predictor._ring[:] = 0.0
        predictor._ring_norms[:] = 0.0
        for i, row in enumerate(data["rows"]):  # type: ignore[union-attr]
            predictor._ring[i] = np.asarray(row, dtype=np.float64)
            predictor._ring_norms[i] = float(np.linalg.norm(predictor._ring[i]))
        predictor._count = int(data["count"])
        predictor._next = int(data["next"])


def restore_cache_into(cache: SemanticCache, data: Dict[str, object]) -> None:
    """Load a :func:`snapshot_cache` payload into ``cache``, replacing its
    contents. Entry embeddings are re-derived from the keys (the embedder
    is a pure deterministic function, so the vectors are bit-identical to
    the ones that were live at snapshot time). The cache's configuration
    must match the snapshot's — recovery into a differently-tuned cache
    would silently change behavior, so it raises instead."""
    config_checks = (
        ("capacity", cache.capacity),
        ("reuse_threshold", cache.reuse_threshold),
        ("augment_threshold", cache.augment_threshold),
        ("policy", cache.policy.value),
        ("lrfu_lambda", cache.lrfu_lambda),
        ("embedding_dim", cache.embedder.dim),
    )
    for key, live in config_checks:
        if data[key] != live:
            raise ValueError(
                f"cache snapshot {key}={data[key]!r} does not match the "
                f"live cache's {key}={live!r}"
            )
    with cache._lock:
        cache.entries.clear()
        # Un-flushed write-behind puts die with the entries they shadow.
        cache._pending_puts = {}
        # Rebuild the vector index from scratch in entry insertion order
        # rather than surgically removing rows from the old one.
        cache.index = type(cache.index)(dim=cache.embedder.dim)
        for stored in data["entries"]:  # type: ignore[union-attr]
            entry = CacheEntry(
                key=stored["key"],
                embedding=cache.embedder.embed(stored["key"]),
                response=stored["response"],
                kind=stored["kind"],
                cost_of_miss=stored["cost_of_miss"],
                reuse_hits=int(stored["reuse_hits"]),
                augment_hits=int(stored["augment_hits"]),
                last_access=int(stored["last_access"]),
                inserted_at=int(stored["inserted_at"]),
                crf=float(stored["crf"]),
                crf_updated_at=int(stored["crf_updated_at"]),
            )
            cache.entries[entry.key] = entry
            cache.index.add(entry.key, entry.embedding)
        # The wholesale replacement invalidates any in-flight batch probe:
        # advance the insert-log base past every recorded probe position so
        # their lookups fall back to a full (fresh-index) scan.
        cache._insert_log_base += len(cache._insert_log) + 1
        cache._insert_log = []
        stats = data["stats"]
        cache.stats = CacheStats(**{field: stats[field] for field in _CACHE_STATS_FIELDS})
        cache._clock = int(data["clock"])
        cache.admission_rejects = int(data["admission_rejects"])
        if cache.admission is not None and "admission" in data:
            _restore_admission(cache.admission, data["admission"])  # type: ignore[arg-type]


# ================================================================ UsageMeter


def snapshot_meter(meter: UsageMeter) -> Dict[str, object]:
    """Serializable snapshot of a usage meter's totals and ledger."""
    with meter._lock:
        data = {field: getattr(meter, field) for field in _METER_FIELDS}
        data["per_model"] = {model: dict(entry) for model, entry in meter.per_model.items()}
    return data


def restore_meter_into(meter: UsageMeter, data: Dict[str, object]) -> None:
    """Load a :func:`snapshot_meter` payload, replacing the meter's state."""
    with meter._lock:
        for field in _METER_FIELDS:
            setattr(meter, field, data[field])
        meter.per_model.clear()
        for model, entry in data["per_model"].items():  # type: ignore[union-attr]
            meter.per_model[model] = dict(entry)


# ============================================================== ServiceStats


def _snapshot_histogram(hist: LatencyHistogram) -> Dict[str, object]:
    return {
        "edges": list(hist.edges),
        "counts": list(hist.counts),
        "total": hist.total,
        "sum_ms": hist.sum_ms,
        "max_ms": hist.max_ms,
    }


def _restore_histogram(data: Dict[str, object]) -> LatencyHistogram:
    hist = LatencyHistogram()
    hist.edges = [float(edge) for edge in data["edges"]]  # type: ignore[union-attr]
    hist.counts = [int(count) for count in data["counts"]]  # type: ignore[union-attr]
    hist.total = int(data["total"])
    hist.sum_ms = float(data["sum_ms"])
    hist.max_ms = float(data["max_ms"])
    return hist


def snapshot_stats(stats: ServiceStats) -> Dict[str, object]:
    """Serializable snapshot of every ServiceStats counter."""
    with stats.lock:
        data: Dict[str, object] = {}
        for name in stats.__dataclass_fields__:
            if name in _STATS_SKIP:
                continue
            value = getattr(stats, name)
            if isinstance(value, dict):
                value = {
                    str(key): (dict(inner) if isinstance(inner, dict) else inner)
                    for key, inner in value.items()
                }
            data[name] = value
        data["latency_hist"] = _snapshot_histogram(stats.latency_hist)
        data["gateway_queue_wait_hist"] = _snapshot_histogram(
            stats.gateway_queue_wait_hist
        )
    return data


def restore_stats_into(stats: ServiceStats, data: Dict[str, object]) -> None:
    """Load a :func:`snapshot_stats` payload, replacing every counter.
    The lock and registered reset hooks survive, exactly as in
    :meth:`~repro.serving.stats.ServiceStats.reset`."""
    with stats.lock:
        for name in stats.__dataclass_fields__:
            if name in _STATS_SKIP or name not in data:
                continue
            value = data[name]
            if isinstance(value, dict):
                if name in _STATS_INT_KEYS:
                    value = {int(key): inner for key, inner in value.items()}
                else:
                    value = {
                        key: (dict(inner) if isinstance(inner, dict) else inner)
                        for key, inner in value.items()
                    }
            setattr(stats, name, value)
        stats.latency_hist = _restore_histogram(data["latency_hist"])  # type: ignore[arg-type]
        # Tolerate snapshots written before the gateway existed.
        if "gateway_queue_wait_hist" in data:
            stats.gateway_queue_wait_hist = _restore_histogram(
                data["gateway_queue_wait_hist"]  # type: ignore[arg-type]
            )


# ================================================================ Completion


def completion_to_dict(completion: Completion) -> Dict[str, object]:
    """Serialize a completion (the cache middleware's replay store)."""
    return {
        "text": completion.text,
        "model": completion.model,
        "prompt_tokens": completion.usage.prompt_tokens,
        "completion_tokens": completion.usage.completion_tokens,
        "cost": completion.cost,
        "latency_ms": completion.latency_ms,
        "confidence": completion.confidence,
        "engine": completion.engine,
        "metadata": completion.metadata,
    }


def completion_from_dict(data: Dict[str, object]) -> Completion:
    return Completion(
        text=data["text"],
        model=data["model"],
        usage=Usage(
            prompt_tokens=int(data["prompt_tokens"]),
            completion_tokens=int(data["completion_tokens"]),
        ),
        cost=float(data["cost"]),
        latency_ms=float(data["latency_ms"]),
        confidence=float(data["confidence"]),
        engine=data["engine"],
        metadata=dict(data["metadata"]),  # type: ignore[arg-type]
    )


# ============================================================== ServingStack


def _iter_layers(provider: object) -> Iterator[object]:
    node = provider
    while node is not None:
        yield node
        node = getattr(node, "inner", None)


def _find_layer(stack: object, cls: type) -> Optional[object]:
    for node in _iter_layers(stack.provider):  # type: ignore[attr-defined]
        if isinstance(node, cls):
            return node
    return None


def _find_meter(stack: object) -> Optional[UsageMeter]:
    for node in _iter_layers(stack.provider):  # type: ignore[attr-defined]
        meter = getattr(node, "meter", None)
        if isinstance(meter, UsageMeter):
            return meter
    return None


def snapshot_stack_state(stack: object) -> Dict[str, object]:
    """Snapshot every stateful layer a serving stack actually has.

    The payload's ``state`` section holds one sub-document per component
    found: ``cache`` (+ ``replay``, the cache middleware's completion
    store), ``budget`` (the dollar ledger), ``meter`` (the terminal
    client's usage meter) and ``stats``. The ``layers`` list pins the
    stack shape so recovery into a differently-composed stack fails loudly
    instead of silently dropping state.
    """
    from repro.serving.middleware import BudgetMiddleware, SemanticCacheMiddleware

    state: Dict[str, object] = {"stats": snapshot_stats(stack.stats)}  # type: ignore[attr-defined]
    cache_mw = _find_layer(stack, SemanticCacheMiddleware)
    if cache_mw is not None:
        state["cache"] = snapshot_cache(cache_mw.cache)
        with cache_mw._replay_lock:
            state["replay"] = {
                key: completion_to_dict(completion)
                for key, completion in cache_mw._completions.items()
            }
    budget_mw = _find_layer(stack, BudgetMiddleware)
    if budget_mw is not None:
        with budget_mw._ledger_lock:
            state["budget"] = {
                "limit_usd": budget_mw.budget_usd,
                "spent_usd": budget_mw._ledger["spent"],
            }
    meter = _find_meter(stack)
    if meter is not None:
        state["meter"] = snapshot_meter(meter)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "layers": list(stack.layers),  # type: ignore[attr-defined]
        "state": state,
    }


def restore_stack_state(stack: object, payload: Dict[str, object]) -> None:
    """Load a :func:`snapshot_stack_state` payload into a freshly built
    stack of the same composition."""
    from repro.serving.middleware import BudgetMiddleware, SemanticCacheMiddleware

    if payload.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(f"unknown snapshot schema: {payload.get('schema')!r}")
    # The last entry is the terminal client's class name. It is stateless
    # and allowed to differ — recovering after a CrashPoint-injected run
    # rebuilds over a plain client — so only the middleware shape is pinned.
    snap_layers = list(payload.get("layers", []))
    if snap_layers[:-1] != list(stack.layers)[:-1]:  # type: ignore[attr-defined]
        raise ValueError(
            f"snapshot was taken of a {snap_layers} stack but the "
            f"live stack is {stack.layers} — rebuild with the same layers"  # type: ignore[attr-defined]
        )
    state: Dict[str, object] = payload["state"]  # type: ignore[assignment]
    restore_stats_into(stack.stats, state["stats"])  # type: ignore[attr-defined, arg-type]
    if "cache" in state:
        cache_mw = _find_layer(stack, SemanticCacheMiddleware)
        if cache_mw is None:
            raise ValueError("snapshot has cache state but the stack has no cache layer")
        restore_cache_into(cache_mw.cache, state["cache"])  # type: ignore[arg-type]
        replay: Dict[str, Dict[str, object]] = state.get("replay", {})  # type: ignore[assignment]
        with cache_mw._replay_lock:
            cache_mw._completions = {
                key: completion_from_dict(data) for key, data in replay.items()
            }
    if "budget" in state:
        budget_mw = _find_layer(stack, BudgetMiddleware)
        if budget_mw is None:
            raise ValueError("snapshot has a budget ledger but the stack has no budget layer")
        with budget_mw._ledger_lock:
            budget_mw._ledger["spent"] = float(state["budget"]["spent_usd"])  # type: ignore[index]
        budget_mw._republish()
    if "meter" in state:
        meter = _find_meter(stack)
        if meter is not None:
            restore_meter_into(meter, state["meter"])  # type: ignore[arg-type]


_COMPARABLE_DROP = ("cache_lookup_ms", "cache_put_ms")


def comparable_state(payload: Dict[str, object]) -> Dict[str, object]:
    """The deterministic portion of a stack snapshot, for equality checks.

    Almost everything in a snapshot is a pure function of the request
    stream; the exceptions are the two wall-clock counters the cache
    middleware measures (``cache_lookup_ms`` / ``cache_put_ms``), which
    this strips so crashed-and-recovered runs can be compared bit for bit
    against uncrashed ones. The terminal client's class name (the last
    ``layers`` entry) is normalized for the same reason: a fault-injected
    run wraps the client in :class:`~repro.llm.faults.CrashPoint` but its
    state is identical to a plain client's.
    """
    import copy

    out = copy.deepcopy(payload)
    layers = out.get("layers")
    if isinstance(layers, list) and layers:
        layers[-1] = "<client>"
    stats: Dict[str, object] = out.get("state", {}).get("stats", {})  # type: ignore[union-attr]
    for field in _COMPARABLE_DROP:
        stats.pop(field, None)
    return out
