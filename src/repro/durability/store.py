"""The durable state store: snapshot + journal under one directory.

:class:`DurableStateStore` owns the two files —

* ``snapshot.json`` — the last checkpoint, written atomically
  (:func:`~repro.durability.atomic.atomic_write_json`), so a crash during
  a checkpoint leaves the previous checkpoint intact;
* ``journal.log`` — the append-only request journal since that
  checkpoint.

:class:`StackDurability` binds a store to a live
:class:`~repro.serving.stack.ServingStack`:

* every completed request is journaled (the request, not its effects);
* :meth:`~StackDurability.checkpoint` snapshots the stack's full logical
  state and truncates the journal — the snapshot *absorbs* it;
* :meth:`~StackDurability.recover` restores the snapshot and then
  **re-executes** the journaled requests through the (deterministic)
  stack, reproducing the pre-crash state bit for bit. Completions
  produced during replay are discarded — only their state effects matter.

The recovery invariant, proved by ``benchmarks/bench_perf_recovery.py``:
for any crash point, (recover → resume) yields the same completions,
ledgers, cache contents and stats as a run that never crashed.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.durability.atomic import atomic_write_json
from repro.durability.journal import Journal
from repro.durability.snapshot import restore_stack_state, snapshot_stack_state

SNAPSHOT_NAME = "snapshot.json"
JOURNAL_NAME = "journal.log"


class DurableStateStore:
    """Filesystem layout + atomic writes for one durable state directory."""

    def __init__(self, directory: str, *, sync: bool = False) -> None:
        self.directory = directory
        self.sync = sync
        os.makedirs(directory, exist_ok=True)
        self.snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
        self.journal = Journal(os.path.join(directory, JOURNAL_NAME), sync=sync)

    def has_snapshot(self) -> bool:
        return os.path.exists(self.snapshot_path)

    def write_snapshot(self, payload: Dict[str, object]) -> None:
        """Atomically replace the snapshot, then truncate the journal.

        Order matters for crash safety: the rename publishes a snapshot
        that already *includes* every journaled request's effects, so
        truncating afterwards can never lose state — a crash between the
        two steps merely replays requests the snapshot already absorbed,
        which is idempotent because replay rebuilds state from the
        snapshot, not on top of the live run.
        """
        atomic_write_json(self.snapshot_path, payload, sync=self.sync)
        self.journal.clear()

    def read_snapshot(self) -> Optional[Dict[str, object]]:
        if not self.has_snapshot():
            return None
        import json

        with open(self.snapshot_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def close(self) -> None:
        self.journal.close()


class StackDurability:
    """Wires a :class:`DurableStateStore` into a live serving stack.

    Constructed by ``build_stack(durable_dir=...)``; drive it through the
    stack's own surface (``stack.checkpoint()``, ``stack.recover()``).

    ``checkpoint_every=N`` auto-checkpoints after every N journaled
    requests, bounding both the journal's size and recovery's replay work.
    """

    def __init__(
        self,
        stack: object,
        directory: str,
        *,
        checkpoint_every: Optional[int] = None,
        sync: bool = False,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive (or None)")
        self.stack = stack
        self.store = DurableStateStore(directory, sync=sync)
        self.checkpoint_every = checkpoint_every
        self.replaying = False
        self._since_checkpoint = len(self.store.journal)

    # ------------------------------------------------------------ journaling

    def record_complete(self, prompt: str, model: Optional[str]) -> None:
        """Journal one acknowledged single completion."""
        if self.replaying:
            return
        self.store.journal.append({"op": "complete", "prompt": prompt, "model": model})
        self._bump()

    def record_complete_batch(
        self, shared_prefix: str, items: List[str], model: Optional[str]
    ) -> None:
        """Journal one acknowledged shared-prefix batch (a single record:
        the batch is one combined request and replays as one)."""
        if self.replaying:
            return
        self.store.journal.append(
            {
                "op": "complete_batch",
                "prefix": shared_prefix,
                "items": list(items),
                "model": model,
            }
        )
        self._bump()

    def _bump(self) -> None:
        self._since_checkpoint += 1
        if self.checkpoint_every is not None and self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    # ------------------------------------------------------- checkpoint/recover

    def checkpoint(self) -> str:
        """Snapshot the stack's state; the journal is absorbed and cleared.
        Returns the snapshot path."""
        payload = snapshot_stack_state(self.stack)
        self.store.write_snapshot(payload)
        self._since_checkpoint = 0
        return self.store.snapshot_path

    def recover(self) -> int:
        """Restore the last checkpoint, then replay the journal.

        Replay re-executes each journaled request through the stack; the
        provider, cache and ledgers are deterministic, so the resulting
        state is bit-identical to the pre-crash state at the last
        acknowledged request. Returns the number of replayed records.
        Completions produced during replay are discarded, and replayed
        requests are not re-journaled.
        """
        payload = self.store.read_snapshot()
        if payload is not None:
            restore_stack_state(self.stack, payload)
        records = self.store.journal.records()
        self.replaying = True
        try:
            for record in records:
                if record.get("op") == "complete":
                    self.stack.complete(record["prompt"], model=record.get("model"))  # type: ignore[attr-defined]
                elif record.get("op") == "complete_batch":
                    self.stack.complete_batch(  # type: ignore[attr-defined]
                        record["prefix"], list(record["items"]), model=record.get("model")
                    )
                # Unknown ops are skipped: a newer writer's record must not
                # brick an older reader's recovery.
        finally:
            self.replaying = False
        self._since_checkpoint = len(records)
        return len(records)

    def close(self) -> None:
        self.store.close()
