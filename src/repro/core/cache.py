"""The semantic LLM cache (Section III-C, Table III).

Differences from a conventional exact-match cache, following the paper:

* **Similarity matching** — queries are embedded; a cached entry hits when
  its cosine similarity to the new query clears a configurable threshold
  (1.0 degenerates to exact matching).
* **Two hit tiers** — a *reuse* hit (similarity ≥ ``reuse_threshold``)
  returns the cached response without calling the LLM; an *augment* hit
  (similarity ≥ ``augment_threshold``) cannot be returned directly but the
  cached (query, response) pair is offered as an extra few-shot example for
  the new prompt. The two tiers carry different eviction weights, exactly
  the paper's case-(1)/case-(2) distinction.
* **Weighted eviction** — LRU and LFU are provided as baselines; the
  ``WEIGHTED`` policy scores entries by hit-type-weighted frequency with
  recency decay and evicts the lowest score.
* **Sub-query caching** — entries are tagged ``original`` or ``sub`` so the
  Table III Cache(O)/Cache(A) comparison can be reproduced.

Similarity matching is backed by the :mod:`repro.vectordb` layer (GPTCache
style): a probe is one matrix reduction over a dense embedding index
instead of a per-entry Python loop. The default :class:`FlatIndex` backend
is *exact* — probes return bit-identical tiers and similarities to the
original linear scan (``benchmarks/bench_perf_hotpaths.py`` asserts this
decision for decision). ``index="ivf"`` / ``index="hnsw"`` trade that
exactness for sublinear probes at large capacities.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro._util import cosine
from repro.llm.embeddings import EmbeddingModel
from repro.llm.provider import CompletionProvider
from repro.vectordb import FlatIndex, HNSWIndex, IVFIndex

REUSE_WEIGHT = 3.0  # case (1): no LLM call needed — most valuable
AUGMENT_WEIGHT = 1.0  # case (2): still calls the LLM


class EvictionPolicy(enum.Enum):
    LRU = "lru"
    LFU = "lfu"
    # LRFU (Lee et al., the paper's ref [77]): a spectrum subsuming LRU and
    # LFU via a decay parameter — see SemanticCache(lrfu_lambda=...).
    LRFU = "lrfu"
    WEIGHTED = "weighted"


@dataclass
class CacheEntry:
    """One cached (query, response) pair with usage statistics."""

    key: str
    embedding: np.ndarray
    response: str
    kind: str = "original"  # 'original' | 'sub'
    cost_of_miss: float = 0.0  # what the original call cost
    reuse_hits: int = 0
    augment_hits: int = 0
    last_access: int = 0
    inserted_at: int = 0
    crf: float = 0.0  # LRFU "combined recency and frequency" value
    crf_updated_at: int = 0

    def touch_lrfu(self, clock: int, lrfu_lambda: float) -> None:
        """Record one reference under LRFU: decay the CRF then add 1.

        ``lrfu_lambda`` in (0, 1]: values near 1 forget fast (≈ LRU),
        values near 0 never forget (≈ LFU)."""
        age = max(0, clock - self.crf_updated_at)
        self.crf = self.crf * ((1.0 - lrfu_lambda) ** age) + 1.0
        self.crf_updated_at = clock

    def lrfu_score(self, clock: int, lrfu_lambda: float) -> float:
        age = max(0, clock - self.crf_updated_at)
        return self.crf * ((1.0 - lrfu_lambda) ** age)

    def weighted_score(self, clock: int, half_life: int = 64) -> float:
        """Eviction score: hit-type-weighted frequency with recency decay."""
        age = max(0, clock - self.last_access)
        decay = 0.5 ** (age / half_life)
        base = REUSE_WEIGHT * self.reuse_hits + AUGMENT_WEIGHT * self.augment_hits
        return (base + 0.5) * decay


@dataclass
class CacheStats:
    """Aggregate cache statistics."""

    lookups: int = 0
    reuse_hits: int = 0
    augment_hits: int = 0
    misses: int = 0
    evictions: int = 0
    cost_saved: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.reuse_hits + self.augment_hits) / self.lookups


@dataclass
class CacheLookup:
    """Result of one cache probe."""

    tier: str  # 'reuse' | 'augment' | 'miss'
    entry: Optional[CacheEntry] = None
    similarity: float = 0.0


class AdmissionPredictor:
    """Predicts whether a candidate entry will be accessed again
    (Section III-C: "decide whether to cache ... or refrain from caching
    based on the likelihood of future access").

    TinyLFU-style doorkeeper: a bounded history of recent query embeddings.
    A query is predicted re-accessible when something similar has already
    been seen before (one-hit wonders have not), or when it is a sub-query
    (sub-queries are shared across originals by construction — the Fig 7
    overlap). The predictor is trained online by its own traffic.

    The history is a fixed ring-buffer matrix: recording an occurrence is
    one row write (no list shifting), and a similarity probe is one matrix
    reduction instead of a per-entry Python loop. Rows scoring within the
    float-reconciliation band of the threshold are re-checked with the
    scalar :func:`~repro._util.cosine`, so decisions are bit-identical to
    the original linear scan.
    """

    def __init__(
        self,
        history: int = 256,
        similarity_threshold: float = 0.92,
        admit_subqueries: bool = True,
        embedding_dim: int = 64,
    ) -> None:
        if history <= 0:
            raise ValueError("history must be positive")
        self.history = history
        self.similarity_threshold = similarity_threshold
        self.admit_subqueries = admit_subqueries
        self.embedder = EmbeddingModel(dim=embedding_dim)
        self._ring = np.zeros((history, embedding_dim), dtype=np.float64)
        self._ring_norms = np.zeros(history, dtype=np.float64)
        self._count = 0  # rows filled, saturates at history
        self._next = 0  # next row to overwrite
        # Guards the ring buffer and cursors. A half-written row (vector
        # stored, norm not yet) would let a probe divide by a stale norm;
        # the lock also keeps should_admit's decide-then-record atomic.
        # Embedding happens *outside* this lock — it is the expensive part.
        self._lock = threading.RLock()

    @property
    def _seen(self) -> List[np.ndarray]:
        """The recorded embeddings, oldest first (compatibility view)."""
        with self._lock:
            if self._count < self.history:
                rows = range(self._count)
            else:
                rows = [(self._next + i) % self.history for i in range(self.history)]
            return [self._ring[i].copy() for i in rows]

    def _observe_vec(self, vec: np.ndarray) -> None:
        row = self._next
        self._ring[row] = vec
        self._ring_norms[row] = float(np.linalg.norm(self._ring[row]))
        self._next = (row + 1) % self.history
        if self._count < self.history:
            self._count += 1

    def _seen_similar_vec(self, vec: np.ndarray) -> bool:
        if self._count == 0:
            return False
        ring = self._ring[: self._count]
        norms = self._ring_norms[: self._count]
        qn = float(np.linalg.norm(vec))
        denom = norms * qn
        dots = ring @ vec
        sims = np.divide(dots, denom, out=np.zeros_like(dots), where=denom > 0)
        threshold = self.similarity_threshold
        best = float(np.max(sims))
        if best < threshold - 1e-9:
            return False
        if best >= threshold + 1e-9:
            return True
        # Borderline rows: reconcile with the scalar cosine the original
        # linear scan computed, so the decision cannot drift by an ulp.
        for row in np.flatnonzero(sims >= threshold - 1e-9):
            if cosine(vec, self._ring[row]) >= threshold:
                return True
        return False

    def observe(self, query: str) -> None:
        """Record one query occurrence."""
        vec = self.embedder.embed(query)
        with self._lock:
            self._observe_vec(vec)

    def seen_similar(self, query: str) -> bool:
        vec = self.embedder.embed(query)
        with self._lock:
            return self._seen_similar_vec(vec)

    def should_admit(self, query: str, kind: str = "original") -> bool:
        """Admission decision; also records the occurrence.

        The query is embedded exactly once and the vector shared between
        the decision and the history write; decision and write are atomic
        under the predictor lock."""
        vec = self.embedder.embed(query)
        with self._lock:
            if self.admit_subqueries and kind == "sub":
                self._observe_vec(vec)
                return True
            admit = self._seen_similar_vec(vec)
            self._observe_vec(vec)
            return admit


def _build_index(index: Union[str, object], dim: int) -> object:
    if not isinstance(index, str):
        return index
    if index == "flat":
        return FlatIndex(dim=dim)
    if index == "ivf":
        return IVFIndex(dim=dim)
    if index == "hnsw":
        return HNSWIndex(dim=dim)
    raise ValueError(f"unknown cache index kind: {index!r} (flat|ivf|hnsw)")


class SemanticCache:
    """Similarity-matched, budget-bounded LLM response cache.

    ``index`` selects the vector backend for probes: ``"flat"`` (default)
    is an exact dense-matrix scan, decision-identical to a per-entry linear
    scan; ``"ivf"`` / ``"hnsw"`` are the approximate
    :mod:`repro.vectordb` indexes for very large capacities, where a probe
    may miss the true nearest entry but runs sublinearly. A prebuilt index
    object (anything with ``add``/``remove``/``search``) is accepted too.

    Thread safety: every probe and mutation holds one re-entrant cache
    lock, so concurrent callers can never observe a torn state (an entry
    in ``entries`` missing from the index, a half-compacted FlatIndex
    buffer, a clock that went backwards). Embedding — the expensive part
    of both paths — runs *outside* the lock. Note the distinction from
    determinism: the lock guarantees consistency under any interleaving,
    but cache *contents* still depend on the order operations arrive, so
    reproducing a serial run bit-for-bit requires issuing operations in
    the serial order (the batching scheduler's single-worker mode does
    exactly this).
    """

    def __init__(
        self,
        capacity: int = 256,
        reuse_threshold: float = 0.95,
        augment_threshold: float = 0.75,
        policy: EvictionPolicy = EvictionPolicy.WEIGHTED,
        embedding_dim: int = 64,
        lrfu_lambda: float = 0.1,
        admission: Optional[AdmissionPredictor] = None,
        index: Union[str, object] = "flat",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0.0 < augment_threshold <= reuse_threshold <= 1.0):
            raise ValueError("need 0 < augment_threshold <= reuse_threshold <= 1")
        if not (0.0 < lrfu_lambda <= 1.0):
            raise ValueError("lrfu_lambda must be in (0, 1]")
        self.capacity = capacity
        self.reuse_threshold = reuse_threshold
        self.augment_threshold = augment_threshold
        self.policy = policy
        self.lrfu_lambda = lrfu_lambda
        self.admission = admission
        self.admission_rejects = 0
        self.embedder = EmbeddingModel(dim=embedding_dim)
        self.entries: Dict[str, CacheEntry] = {}
        self.index = _build_index(index, embedding_dim)
        self.stats = CacheStats()
        self._clock = 0
        # Guards entries, the vector index, stats, and the LRFU clock as
        # one unit: the index and the entry dict must never disagree.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    # ------------------------------------------------------------- lookups

    def _best_match(self, query_vec: np.ndarray) -> Optional[Tuple[str, float]]:
        """Nearest cached key and its similarity, via the vector index."""
        if isinstance(self.index, FlatIndex):
            return self.index.search_top1(query_vec, refine_exact=True)
        hits = self.index.search(query_vec, k=1)
        return hits[0] if hits else None

    def lookup(self, query: str) -> CacheLookup:
        """Probe the cache; updates hit statistics."""
        # Embed before taking the lock: the embedder memoizes under its
        # own lock and the vector is a pure function of the query text.
        query_vec = self.embedder.embed(query)
        with self._lock:
            self._clock += 1
            self.stats.lookups += 1
            if not self.entries:
                self.stats.misses += 1
                return CacheLookup(tier="miss")
            best = self._best_match(query_vec)
            if best is None:
                self.stats.misses += 1
                return CacheLookup(tier="miss")
            best_key, best_sim = best
            best_entry = self.entries[best_key]
            if best_sim >= self.reuse_threshold:
                best_entry.reuse_hits += 1
                best_entry.last_access = self._clock
                best_entry.touch_lrfu(self._clock, self.lrfu_lambda)
                self.stats.reuse_hits += 1
                self.stats.cost_saved += best_entry.cost_of_miss
                return CacheLookup(tier="reuse", entry=best_entry, similarity=best_sim)
            if best_sim >= self.augment_threshold:
                best_entry.augment_hits += 1
                best_entry.last_access = self._clock
                best_entry.touch_lrfu(self._clock, self.lrfu_lambda)
                self.stats.augment_hits += 1
                return CacheLookup(tier="augment", entry=best_entry, similarity=best_sim)
            self.stats.misses += 1
            return CacheLookup(tier="miss")

    def peek(self, query: str) -> CacheLookup:
        """Read-only probe: the same tiering as :meth:`lookup`, but no
        statistics, hit counters or eviction-clock updates — the serving
        layer's degraded-answer fallback uses this so failure handling
        never perturbs cache behavior."""
        query_vec = self.embedder.embed(query)
        with self._lock:
            if not self.entries:
                return CacheLookup(tier="miss")
            best = self._best_match(query_vec)
            if best is None:
                return CacheLookup(tier="miss")
            best_key, best_sim = best
            best_entry = self.entries[best_key]
            if best_sim >= self.reuse_threshold:
                return CacheLookup(tier="reuse", entry=best_entry, similarity=best_sim)
            if best_sim >= self.augment_threshold:
                return CacheLookup(tier="augment", entry=best_entry, similarity=best_sim)
            return CacheLookup(tier="miss")

    # ------------------------------------------------------------- updates

    def put(
        self, query: str, response: str, kind: str = "original", cost: float = 0.0
    ) -> Optional[CacheEntry]:
        """Insert (or refresh) an entry, evicting if over capacity.

        With an :class:`AdmissionPredictor` configured, entries predicted
        to never be re-accessed are refused (returns None)."""
        with self._lock:
            self._clock += 1
            if query in self.entries:
                entry = self.entries[query]
                entry.response = response
                entry.cost_of_miss = cost
                entry.last_access = self._clock
                entry.touch_lrfu(self._clock, self.lrfu_lambda)
                return entry
        # Admission probe and embedding run off the cache lock: the
        # predictor and the embedder memo each carry their own lock, and
        # neither depends on cache state.
        if self.admission is not None and not self.admission.should_admit(query, kind=kind):
            with self._lock:
                self.admission_rejects += 1
            return None
        embedding = self.embedder.embed(query)
        with self._lock:
            if query in self.entries:
                # Another thread inserted the same key while we were off
                # the lock — refresh rather than duplicate the index row.
                entry = self.entries[query]
                entry.response = response
                entry.cost_of_miss = cost
                entry.last_access = self._clock
                entry.touch_lrfu(self._clock, self.lrfu_lambda)
                return entry
            while len(self.entries) >= self.capacity:
                self._evict()
            entry = CacheEntry(
                key=query,
                embedding=embedding,
                response=response,
                kind=kind,
                cost_of_miss=cost,
                last_access=self._clock,
                inserted_at=self._clock,
            )
            entry.touch_lrfu(self._clock, self.lrfu_lambda)
            self.entries[query] = entry
            self.index.add(query, embedding)
            return entry

    def _evict(self) -> None:
        if not self.entries:
            return
        if self.policy is EvictionPolicy.LRU:
            victim = min(self.entries.values(), key=lambda e: (e.last_access, e.key))
        elif self.policy is EvictionPolicy.LFU:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.reuse_hits + e.augment_hits, e.last_access, e.key),
            )
        elif self.policy is EvictionPolicy.LRFU:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.lrfu_score(self._clock, self.lrfu_lambda), e.key),
            )
        else:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.weighted_score(self._clock), e.key),
            )
        del self.entries[victim.key]
        self.index.remove(victim.key)
        self.stats.evictions += 1


class CachedLLMClient:
    """LLM client wrapper that consults a :class:`SemanticCache` first.

    On a *reuse* hit the cached text is returned with zero cost. On an
    *augment* hit the cached (query, response) pair is appended to the
    prompt as an extra example before calling the LLM (the paper's case
    (2): cached queries augment the new query).

    For a wrapper that itself implements the provider protocol (and so
    stacks under other layers), see
    :class:`repro.serving.SemanticCacheMiddleware`.
    """

    def __init__(
        self,
        client: CompletionProvider,
        cache: Optional[SemanticCache] = None,
        cache_kind: str = "original",
    ) -> None:
        self.client = client
        self.cache = cache if cache is not None else SemanticCache()
        self.cache_kind = cache_kind

    def complete(
        self,
        prompt: str,
        model: Optional[str] = None,
        cache_key: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Returns ``(text, source)`` where source is 'cache' or 'llm'.

        ``cache_key`` defaults to the full prompt; passing the bare question
        makes matching robust to prompt framing differences.
        """
        key = cache_key if cache_key is not None else prompt
        lookup = self.cache.lookup(key)
        if lookup.tier == "reuse" and lookup.entry is not None:
            return lookup.entry.response, "cache"
        effective_prompt = prompt
        if lookup.tier == "augment" and lookup.entry is not None:
            effective_prompt = (
                f"Example: Question: {lookup.entry.key} Answer: {lookup.entry.response}\n"
                + prompt
            )
        completion = self.client.complete(effective_prompt, model=model)
        self.cache.put(key, completion.text, kind=self.cache_kind, cost=completion.cost)
        return completion.text, "llm"
