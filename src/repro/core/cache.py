"""The semantic LLM cache (Section III-C, Table III).

Differences from a conventional exact-match cache, following the paper:

* **Similarity matching** — queries are embedded; a cached entry hits when
  its cosine similarity to the new query clears a configurable threshold
  (1.0 degenerates to exact matching).
* **Two hit tiers** — a *reuse* hit (similarity ≥ ``reuse_threshold``)
  returns the cached response without calling the LLM; an *augment* hit
  (similarity ≥ ``augment_threshold``) cannot be returned directly but the
  cached (query, response) pair is offered as an extra few-shot example for
  the new prompt. The two tiers carry different eviction weights, exactly
  the paper's case-(1)/case-(2) distinction.
* **Weighted eviction** — LRU and LFU are provided as baselines; the
  ``WEIGHTED`` policy scores entries by hit-type-weighted frequency with
  recency decay and evicts the lowest score.
* **Sub-query caching** — entries are tagged ``original`` or ``sub`` so the
  Table III Cache(O)/Cache(A) comparison can be reproduced.

Similarity matching is backed by the :mod:`repro.vectordb` layer (GPTCache
style): a probe is one matrix reduction over a dense embedding index
instead of a per-entry Python loop. The default :class:`FlatIndex` backend
is *exact* — probes return bit-identical tiers and similarities to the
original linear scan (``benchmarks/bench_perf_hotpaths.py`` asserts this
decision for decision). ``index="ivf"`` / ``index="hnsw"`` trade that
exactness for sublinear probes at large capacities.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._util import cosine
from repro.llm.embeddings import EmbeddingModel
from repro.llm.provider import CompletionProvider
from repro.vectordb import FlatIndex, HNSWIndex, IVFIndex, auto_index
from repro.vectordb.distance import Metric, scalar_similarity

REUSE_WEIGHT = 3.0  # case (1): no LLM call needed — most valuable
AUGMENT_WEIGHT = 1.0  # case (2): still calls the LLM


class EvictionPolicy(enum.Enum):
    LRU = "lru"
    LFU = "lfu"
    # LRFU (Lee et al., the paper's ref [77]): a spectrum subsuming LRU and
    # LFU via a decay parameter — see SemanticCache(lrfu_lambda=...).
    LRFU = "lrfu"
    WEIGHTED = "weighted"


@dataclass
class CacheEntry:
    """One cached (query, response) pair with usage statistics."""

    key: str
    # None while the entry sits in the cache's write-behind put buffer;
    # set (batched) by the first probe's flush.
    embedding: Optional[np.ndarray]
    response: str
    kind: str = "original"  # 'original' | 'sub'
    cost_of_miss: float = 0.0  # what the original call cost
    reuse_hits: int = 0
    augment_hits: int = 0
    last_access: int = 0
    inserted_at: int = 0
    crf: float = 0.0  # LRFU "combined recency and frequency" value
    crf_updated_at: int = 0

    def touch_lrfu(self, clock: int, lrfu_lambda: float) -> None:
        """Record one reference under LRFU: decay the CRF then add 1.

        ``lrfu_lambda`` in (0, 1]: values near 1 forget fast (≈ LRU),
        values near 0 never forget (≈ LFU)."""
        age = max(0, clock - self.crf_updated_at)
        self.crf = self.crf * ((1.0 - lrfu_lambda) ** age) + 1.0
        self.crf_updated_at = clock

    def lrfu_score(self, clock: int, lrfu_lambda: float) -> float:
        age = max(0, clock - self.crf_updated_at)
        return self.crf * ((1.0 - lrfu_lambda) ** age)

    def weighted_score(self, clock: int, half_life: int = 64) -> float:
        """Eviction score: hit-type-weighted frequency with recency decay."""
        age = max(0, clock - self.last_access)
        decay = 0.5 ** (age / half_life)
        base = REUSE_WEIGHT * self.reuse_hits + AUGMENT_WEIGHT * self.augment_hits
        return (base + 0.5) * decay


@dataclass
class CacheStats:
    """Aggregate cache statistics."""

    lookups: int = 0
    reuse_hits: int = 0
    augment_hits: int = 0
    misses: int = 0
    evictions: int = 0
    cost_saved: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.reuse_hits + self.augment_hits) / self.lookups


@dataclass
class CacheLookup:
    """Result of one cache probe."""

    tier: str  # 'reuse' | 'augment' | 'miss'
    entry: Optional[CacheEntry] = None
    similarity: float = 0.0


class AdmissionPredictor:
    """Predicts whether a candidate entry will be accessed again
    (Section III-C: "decide whether to cache ... or refrain from caching
    based on the likelihood of future access").

    TinyLFU-style doorkeeper: a bounded history of recent query embeddings.
    A query is predicted re-accessible when something similar has already
    been seen before (one-hit wonders have not), or when it is a sub-query
    (sub-queries are shared across originals by construction — the Fig 7
    overlap). The predictor is trained online by its own traffic.

    The history is a fixed ring-buffer matrix: recording an occurrence is
    one row write (no list shifting), and a similarity probe is one matrix
    reduction instead of a per-entry Python loop. Rows scoring within the
    float-reconciliation band of the threshold are re-checked with the
    scalar :func:`~repro._util.cosine`, so decisions are bit-identical to
    the original linear scan.
    """

    def __init__(
        self,
        history: int = 256,
        similarity_threshold: float = 0.92,
        admit_subqueries: bool = True,
        embedding_dim: int = 64,
    ) -> None:
        if history <= 0:
            raise ValueError("history must be positive")
        self.history = history
        self.similarity_threshold = similarity_threshold
        self.admit_subqueries = admit_subqueries
        self.embedder = EmbeddingModel(dim=embedding_dim)
        self._ring = np.zeros((history, embedding_dim), dtype=np.float64)
        self._ring_norms = np.zeros(history, dtype=np.float64)
        self._count = 0  # rows filled, saturates at history
        self._next = 0  # next row to overwrite
        # Guards the ring buffer and cursors. A half-written row (vector
        # stored, norm not yet) would let a probe divide by a stale norm;
        # the lock also keeps should_admit's decide-then-record atomic.
        # Embedding happens *outside* this lock — it is the expensive part.
        self._lock = threading.RLock()

    @property
    def _seen(self) -> List[np.ndarray]:
        """The recorded embeddings, oldest first (compatibility view)."""
        with self._lock:
            if self._count < self.history:
                rows = range(self._count)
            else:
                rows = [(self._next + i) % self.history for i in range(self.history)]
            return [self._ring[i].copy() for i in rows]

    def _observe_vec(self, vec: np.ndarray) -> None:
        row = self._next
        self._ring[row] = vec
        self._ring_norms[row] = float(np.linalg.norm(self._ring[row]))
        self._next = (row + 1) % self.history
        if self._count < self.history:
            self._count += 1

    def _seen_similar_vec(self, vec: np.ndarray) -> bool:
        if self._count == 0:
            return False
        ring = self._ring[: self._count]
        norms = self._ring_norms[: self._count]
        qn = float(np.linalg.norm(vec))
        denom = norms * qn
        dots = ring @ vec
        sims = np.divide(dots, denom, out=np.zeros_like(dots), where=denom > 0)
        threshold = self.similarity_threshold
        best = float(np.max(sims))
        if best < threshold - 1e-9:
            return False
        if best >= threshold + 1e-9:
            return True
        # Borderline rows: reconcile with the scalar cosine the original
        # linear scan computed, so the decision cannot drift by an ulp.
        for row in np.flatnonzero(sims >= threshold - 1e-9):
            if cosine(vec, self._ring[row]) >= threshold:
                return True
        return False

    def observe(self, query: str) -> None:
        """Record one query occurrence."""
        vec = self.embedder.embed(query)
        with self._lock:
            self._observe_vec(vec)

    def seen_similar(self, query: str) -> bool:
        vec = self.embedder.embed(query)
        with self._lock:
            return self._seen_similar_vec(vec)

    def should_admit(self, query: str, kind: str = "original") -> bool:
        """Admission decision; also records the occurrence.

        The query is embedded exactly once and the vector shared between
        the decision and the history write; decision and write are atomic
        under the predictor lock."""
        vec = self.embedder.embed(query)
        with self._lock:
            if self.admit_subqueries and kind == "sub":
                self._observe_vec(vec)
                return True
            admit = self._seen_similar_vec(vec)
            self._observe_vec(vec)
            return admit


@dataclass
class _BatchProbe:
    """Precomputed best-match snapshot for one scheduler batch.

    ``best`` maps each batch key to its snapshot winner (or None when the
    cache was empty), ``vectors`` to its embedding; ``log_pos`` and
    ``evictions`` pin the cache state the snapshot reflects so later
    lookups can merge (appends only) or fall back (anything else)."""

    best: Dict[str, Optional[Tuple[str, float]]]
    vectors: Dict[str, np.ndarray]
    log_pos: int
    evictions: int


def _build_index(index: Union[str, object], dim: int, capacity: int) -> object:
    if not isinstance(index, str):
        return index
    if index == "auto":
        return auto_index(dim, capacity)
    if index == "flat":
        return FlatIndex(dim=dim)
    if index == "ivf":
        return IVFIndex(dim=dim)
    if index == "hnsw":
        return HNSWIndex(dim=dim)
    raise ValueError(f"unknown cache index kind: {index!r} (auto|flat|ivf|hnsw)")


class SemanticCache:
    """Similarity-matched, budget-bounded LLM response cache.

    ``index`` selects the vector backend for probes: ``"auto"`` (default)
    picks by capacity via :func:`repro.vectordb.auto_index` — an exact
    dense-matrix :class:`FlatIndex` up to ~50k entries, the cluster-pruned
    (still exact) :class:`~repro.vectordb.ExactIVFIndex` above — so probe
    decisions are always identical to a per-entry linear scan. ``"flat"``
    forces the brute-force index; ``"ivf"`` / ``"hnsw"`` are the
    *approximate* :mod:`repro.vectordb` indexes, where a probe may miss
    the true nearest entry but runs sublinearly. A prebuilt index object
    (anything with ``add``/``remove``/``search``) is accepted too.

    Thread safety: every probe and mutation holds one re-entrant cache
    lock, so concurrent callers can never observe a torn state (an entry
    in ``entries`` missing from the index, a half-compacted FlatIndex
    buffer, a clock that went backwards). Embedding — the expensive part
    of both paths — runs *outside* the lock. Note the distinction from
    determinism: the lock guarantees consistency under any interleaving,
    but cache *contents* still depend on the order operations arrive, so
    reproducing a serial run bit-for-bit requires issuing operations in
    the serial order (the batching scheduler's single-worker mode does
    exactly this).
    """

    def __init__(
        self,
        capacity: int = 256,
        reuse_threshold: float = 0.95,
        augment_threshold: float = 0.75,
        policy: EvictionPolicy = EvictionPolicy.WEIGHTED,
        embedding_dim: int = 64,
        lrfu_lambda: float = 0.1,
        admission: Optional[AdmissionPredictor] = None,
        index: Union[str, object] = "auto",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0.0 < augment_threshold <= reuse_threshold <= 1.0):
            raise ValueError("need 0 < augment_threshold <= reuse_threshold <= 1")
        if not (0.0 < lrfu_lambda <= 1.0):
            raise ValueError("lrfu_lambda must be in (0, 1]")
        self.capacity = capacity
        self.reuse_threshold = reuse_threshold
        self.augment_threshold = augment_threshold
        self.policy = policy
        self.lrfu_lambda = lrfu_lambda
        self.admission = admission
        self.admission_rejects = 0
        self.embedder = EmbeddingModel(dim=embedding_dim)
        self.entries: Dict[str, CacheEntry] = {}
        self.index = _build_index(index, embedding_dim, capacity)
        self.stats = CacheStats()
        self._clock = 0
        # Guards entries, the vector index, stats, and the LRFU clock as
        # one unit: the index and the entry dict must never disagree.
        self._lock = threading.RLock()
        # Batch-probe support: an append-only log of inserted keys (with a
        # rotating base offset so it stays bounded) lets a probe snapshot
        # be merged exactly with entries inserted after it. The active
        # probe is per-thread: a dispatcher thread probes its whole batch
        # once, then its per-request lookups reuse the precomputed sims.
        self._insert_log: List[str] = []
        self._insert_log_base = 0
        self._probe_local = threading.local()
        # Write-behind puts: entries parked here are live in ``entries``
        # (hit/evict/len all see them) but not yet embedded or in the
        # vector index. The first probe flushes the whole buffer — one
        # batched embed sweep plus index adds in insertion order — so an
        # insert-heavy phase never pays per-put embedding or index costs.
        self._pending_puts: Dict[str, CacheEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    # ------------------------------------------------------------- lookups

    def _best_match(self, query_vec: np.ndarray) -> Optional[Tuple[str, float]]:
        """Nearest cached key and its similarity, via the vector index."""
        if hasattr(self.index, "search_top1"):
            return self.index.search_top1(query_vec, refine_exact=True)
        hits = self.index.search(query_vec, k=1)
        return hits[0] if hits else None

    # --------------------------------------------------------- batch probes

    def batch_probe(self, queries: Sequence[str]) -> Optional["_BatchProbe"]:
        """Precompute best matches for a whole batch with one matrix pass.

        Called by the serving layer when a scheduler batch is drained: all
        batch keys are embedded in one :meth:`EmbeddingModel.embed_batch`
        sweep and scored against the index in one matrix-matrix product
        (instead of a gemv per request). The probe is installed for the
        *calling thread*; subsequent :meth:`lookup`/:meth:`peek` calls on
        that thread reuse the precomputed winner instead of re-scanning.

        Exactness: the probe records the insert-log position and eviction
        count at snapshot time. A later lookup takes the snapshot winner
        and merges it with scalar similarities of entries inserted *after*
        the snapshot, in insertion order with a strict ``>`` — exactly the
        first-inserted-strictly-greatest rule the sequential scan applies —
        so the merged result is bit-identical to an unprobed lookup. Any
        eviction after the snapshot invalidates the probe (lookups fall
        back to the full scan); correctness never depends on the probe.

        Returns the probe (also threaded through ``_probe_local``), or
        ``None`` when the index can't batch (no ``search_top1_many``).
        Call :meth:`end_probe` when the batch is done.
        """
        if not hasattr(self.index, "search_top1_many"):
            return None
        if getattr(self.index, "metric", Metric.COSINE) is not Metric.COSINE:
            return None  # delta merge below assumes cosine scalar sims
        unique = list(dict.fromkeys(queries))
        if not unique:
            return None
        vectors = self.embedder.embed_batch(unique)
        with self._lock:
            if self._pending_puts:
                self._flush_puts()
            # Rotate the insert log so it can't grow without bound; any
            # probe older than the rotation simply falls back.
            if len(self._insert_log) > 4096:
                self._insert_log_base += len(self._insert_log)
                self._insert_log = []
            if self.entries:
                hits = self.index.search_top1_many(vectors, refine_exact=True)
            else:
                hits = [None] * len(unique)
            probe = _BatchProbe(
                best={q: hit for q, hit in zip(unique, hits)},
                vectors={q: vectors[i] for i, q in enumerate(unique)},
                log_pos=self._insert_log_base + len(self._insert_log),
                evictions=self.stats.evictions,
            )
        self._probe_local.probe = probe
        return probe

    def end_probe(self) -> None:
        """Drop the calling thread's active batch probe (if any)."""
        self._probe_local.probe = None

    def _probe_best(
        self, query: str, query_vec: np.ndarray
    ) -> Optional[Tuple[str, float]]:
        """Best match via the thread's batch probe, or the full scan.

        Must be called under the cache lock."""
        if query in self.entries:
            # Exact requery returns its own entry: distinct texts can share
            # one embedding (same feature multiset), and a similarity scan
            # would tie-break to whichever was inserted first.
            return query, 1.0
        if self._pending_puts:
            self._flush_puts()
        probe: Optional[_BatchProbe] = getattr(self._probe_local, "probe", None)
        if (
            probe is None
            or query not in probe.best
            or probe.evictions != self.stats.evictions
            or probe.log_pos < self._insert_log_base
        ):
            return self._best_match(query_vec)
        best = probe.best[query]
        delta = self._insert_log[probe.log_pos - self._insert_log_base :]
        if delta:
            best_sim = best[1] if best is not None else -np.inf
            best_key = best[0] if best is not None else None
            for key in delta:
                entry = self.entries.get(key)
                if entry is None:  # evicted — but then evictions differed
                    return self._best_match(query_vec)
                sim = scalar_similarity(query_vec, entry.embedding, Metric.COSINE)
                if sim > best_sim:
                    best_sim, best_key = sim, key
            if best_key is None:
                return None
            return best_key, float(best_sim)
        return best

    def lookup(self, query: str) -> CacheLookup:
        """Probe the cache; updates hit statistics."""
        # Embed before taking the lock: the embedder memoizes under its
        # own lock and the vector is a pure function of the query text.
        query_vec = self.embedder.embed(query)
        with self._lock:
            self._clock += 1
            self.stats.lookups += 1
            if not self.entries:
                self.stats.misses += 1
                return CacheLookup(tier="miss")
            best = self._probe_best(query, query_vec)
            if best is None:
                self.stats.misses += 1
                return CacheLookup(tier="miss")
            best_key, best_sim = best
            best_entry = self.entries[best_key]
            if best_sim >= self.reuse_threshold:
                best_entry.reuse_hits += 1
                best_entry.last_access = self._clock
                best_entry.touch_lrfu(self._clock, self.lrfu_lambda)
                self.stats.reuse_hits += 1
                self.stats.cost_saved += best_entry.cost_of_miss
                return CacheLookup(tier="reuse", entry=best_entry, similarity=best_sim)
            if best_sim >= self.augment_threshold:
                best_entry.augment_hits += 1
                best_entry.last_access = self._clock
                best_entry.touch_lrfu(self._clock, self.lrfu_lambda)
                self.stats.augment_hits += 1
                return CacheLookup(tier="augment", entry=best_entry, similarity=best_sim)
            self.stats.misses += 1
            return CacheLookup(tier="miss")

    def peek(self, query: str) -> CacheLookup:
        """Read-only probe: the same tiering as :meth:`lookup`, but no
        statistics, hit counters or eviction-clock updates — the serving
        layer's degraded-answer fallback uses this so failure handling
        never perturbs cache behavior."""
        query_vec = self.embedder.embed(query)
        with self._lock:
            if not self.entries:
                return CacheLookup(tier="miss")
            best = self._probe_best(query, query_vec)
            if best is None:
                return CacheLookup(tier="miss")
            best_key, best_sim = best
            best_entry = self.entries[best_key]
            if best_sim >= self.reuse_threshold:
                return CacheLookup(tier="reuse", entry=best_entry, similarity=best_sim)
            if best_sim >= self.augment_threshold:
                return CacheLookup(tier="augment", entry=best_entry, similarity=best_sim)
            return CacheLookup(tier="miss")

    def touch_hit(self, key: str, tier: str) -> CacheEntry:
        """Apply a hit decided by an external router to entry ``key``.

        The sharded cluster cache (:mod:`repro.serving.cluster`) probes
        every partition read-only via :meth:`peek`, merges the per-shard
        winners itself, and then applies exactly one hit — here — to the
        winning partition, so entry hit counters, the LRFU clock and the
        partition's :class:`CacheStats` evolve as if the winning partition
        had served the lookup directly."""
        if tier not in ("reuse", "augment"):
            raise ValueError(f"tier must be 'reuse' or 'augment', got {tier!r}")
        with self._lock:
            entry = self.entries[key]
            self._clock += 1
            self.stats.lookups += 1
            entry.last_access = self._clock
            entry.touch_lrfu(self._clock, self.lrfu_lambda)
            if tier == "reuse":
                entry.reuse_hits += 1
                self.stats.reuse_hits += 1
                self.stats.cost_saved += entry.cost_of_miss
            else:
                entry.augment_hits += 1
                self.stats.augment_hits += 1
            return entry

    # ------------------------------------------------------------- updates

    def put(
        self, query: str, response: str, kind: str = "original", cost: float = 0.0
    ) -> Optional[CacheEntry]:
        """Insert (or refresh) an entry, evicting if over capacity.

        With an :class:`AdmissionPredictor` configured, entries predicted
        to never be re-accessed are refused (returns None)."""
        if self.admission is None:
            # Fast path: one lock section for the whole refresh-or-insert.
            # Embedding and the index add are write-behind — the entry is
            # parked un-embedded in ``_pending_puts`` and materialized (one
            # batched embed sweep, index adds in insertion order) by the
            # next probe — so a put is a dict insert plus a buffer park.
            with self._lock:
                self._clock += 1
                entry = self.entries.get(query)
                if entry is not None:
                    entry.response = response
                    entry.cost_of_miss = cost
                    entry.last_access = self._clock
                    entry.touch_lrfu(self._clock, self.lrfu_lambda)
                    return entry
                while len(self.entries) >= self.capacity:
                    self._evict()
                # A fresh entry's touch_lrfu is 0*(1-λ)**age + 1 == 1.0
                # exactly, so fold it into the constructor (saves a method
                # call + pow on every insert; bit-identical to the seed).
                entry = CacheEntry(
                    key=query,
                    embedding=None,
                    response=response,
                    kind=kind,
                    cost_of_miss=cost,
                    last_access=self._clock,
                    inserted_at=self._clock,
                    crf=1.0,
                    crf_updated_at=self._clock,
                )
                self.entries[query] = entry
                self._pending_puts[query] = entry
                self._insert_log.append(query)
                return entry
        with self._lock:
            self._clock += 1
            if query in self.entries:
                entry = self.entries[query]
                entry.response = response
                entry.cost_of_miss = cost
                entry.last_access = self._clock
                entry.touch_lrfu(self._clock, self.lrfu_lambda)
                return entry
        # Admission probe and embedding run off the cache lock: the
        # predictor and the embedder memo each carry their own lock, and
        # neither depends on cache state.
        if self.admission is not None and not self.admission.should_admit(query, kind=kind):
            with self._lock:
                self.admission_rejects += 1
            return None
        embedding = self.embedder.embed(query)
        with self._lock:
            if query in self.entries:
                # Another thread inserted the same key while we were off
                # the lock — refresh rather than duplicate the index row.
                entry = self.entries[query]
                entry.response = response
                entry.cost_of_miss = cost
                entry.last_access = self._clock
                entry.touch_lrfu(self._clock, self.lrfu_lambda)
                return entry
            while len(self.entries) >= self.capacity:
                self._evict()
            entry = CacheEntry(
                key=query,
                embedding=embedding,
                response=response,
                kind=kind,
                cost_of_miss=cost,
                last_access=self._clock,
                inserted_at=self._clock,
            )
            entry.touch_lrfu(self._clock, self.lrfu_lambda)
            self.entries[query] = entry
            # Park alongside the fast path's un-embedded entries so index
            # insertion order always equals entry insertion order.
            self._pending_puts[query] = entry
            self._insert_log.append(query)
            return entry

    def _flush_puts(self) -> None:
        """Materialize the write-behind put buffer (under the cache lock).

        Embeds every un-embedded parked entry with one
        :meth:`EmbeddingModel.embed_batch` sweep, then pushes all parked
        entries into the vector index in insertion order — so index row
        order (and therefore first-inserted tie-breaks) is exactly what
        eager per-put adds would have produced."""
        pending = self._pending_puts
        if not pending:
            return
        self._pending_puts = {}
        missing = [key for key, entry in pending.items() if entry.embedding is None]
        if missing:
            matrix = self.embedder.embed_batch(missing)
            for i, key in enumerate(missing):
                pending[key].embedding = matrix[i]
        for key, entry in pending.items():
            self.index.add(key, entry.embedding)

    def flush(self) -> None:
        """Force-materialize all write-behind state now.

        Flushes the cache-level put buffer (embeddings + index adds) and,
        when the index itself buffers inserts (:class:`FlatIndex` and its
        subclasses), the index's pending block too. Probes do this
        automatically; call it before inspecting ``cache.index``
        internals or measuring steady-state probe latency."""
        with self._lock:
            self._flush_puts()
            flush_index = getattr(self.index, "flush", None)
            if flush_index is not None:
                flush_index()

    def _evict(self) -> None:
        if not self.entries:
            return
        if self.policy is EvictionPolicy.LRU:
            victim = min(self.entries.values(), key=lambda e: (e.last_access, e.key))
        elif self.policy is EvictionPolicy.LFU:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.reuse_hits + e.augment_hits, e.last_access, e.key),
            )
        elif self.policy is EvictionPolicy.LRFU:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.lrfu_score(self._clock, self.lrfu_lambda), e.key),
            )
        else:
            victim = min(
                self.entries.values(),
                key=lambda e: (e.weighted_score(self._clock), e.key),
            )
        del self.entries[victim.key]
        if self._pending_puts.pop(victim.key, None) is None:
            # Only flushed entries ever reached the index; a victim still
            # in the put buffer just gets retracted from it.
            self.index.remove(victim.key)
        self.stats.evictions += 1


class CachedLLMClient:
    """LLM client wrapper that consults a :class:`SemanticCache` first.

    On a *reuse* hit the cached text is returned with zero cost. On an
    *augment* hit the cached (query, response) pair is appended to the
    prompt as an extra example before calling the LLM (the paper's case
    (2): cached queries augment the new query).

    For a wrapper that itself implements the provider protocol (and so
    stacks under other layers), see
    :class:`repro.serving.SemanticCacheMiddleware`.
    """

    def __init__(
        self,
        client: CompletionProvider,
        cache: Optional[SemanticCache] = None,
        cache_kind: str = "original",
    ) -> None:
        self.client = client
        self.cache = cache if cache is not None else SemanticCache()
        self.cache_kind = cache_kind

    def complete(
        self,
        prompt: str,
        model: Optional[str] = None,
        cache_key: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Returns ``(text, source)`` where source is 'cache' or 'llm'.

        ``cache_key`` defaults to the full prompt; passing the bare question
        makes matching robust to prompt framing differences.
        """
        key = cache_key if cache_key is not None else prompt
        lookup = self.cache.lookup(key)
        if lookup.tier == "reuse" and lookup.entry is not None:
            return lookup.entry.response, "cache"
        effective_prompt = prompt
        if lookup.tier == "augment" and lookup.entry is not None:
            effective_prompt = (
                f"Example: Question: {lookup.entry.key} Answer: {lookup.entry.response}\n"
                + prompt
            )
        completion = self.client.complete(effective_prompt, model=model)
        self.cache.put(key, completion.text, kind=self.cache_kind, cost=completion.cost)
        return completion.text, "llm"
