"""LLM output validation (Section III-E).

Data management demands reliability that probabilistic LLM output does not
natively provide. This module implements the paper's two envisioned
directions:

**Validators** — deterministic checks over LLM outputs:

* :class:`SQLValidator` — syntax, schema conformance, and executability of
  generated SQL against a database;
* :class:`TransactionValidator` — atomicity framing (BEGIN/COMMIT) and
  balance conservation for NL2Transaction scripts;
* :func:`self_consistency` — sample the same prompt across differently
  seeded clients and majority-vote (disagreement = low reliability);
* :func:`explain_by_occlusion` — interpretability: token-level importance
  by occluding prompt words and measuring the completion change.

**Human-in-the-loop** — :class:`CrowdValidator` simulates crowd workers of
configurable individual accuracy voting on output correctness, aggregated
by majority (the crowdsourced score function the paper describes).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._util import rng_from, words
from repro.errors import SQLError
from repro.llm.provider import CompletionProvider, make_client
from repro.sqldb import Database
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_sql


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one validation: verdict plus per-check detail."""

    valid: bool
    checks: Tuple[Tuple[str, bool, str], ...]  # (check name, passed, detail)

    def failed_checks(self) -> List[str]:
        return [name for name, passed, _detail in self.checks if not passed]


class SQLValidator:
    """Validates generated SQL: parses, resolves names, executes."""

    def __init__(self, db: Database) -> None:
        self.db = db

    def validate(self, sql: str) -> ValidationReport:
        """Run all checks on the SQL text; see class docstring."""
        checks: List[Tuple[str, bool, str]] = []
        # 1. Syntax.
        try:
            statements = parse_sql(sql)
            checks.append(("syntax", True, f"{len(statements)} statement(s)"))
        except SQLError as exc:
            checks.append(("syntax", False, str(exc)))
            return ValidationReport(valid=False, checks=tuple(checks))
        # 2. Schema conformance: every referenced table exists.
        unknown = sorted(
            {t for t in self._referenced_tables(statements) if not self.db.has_table(t)}
        )
        checks.append(
            ("schema", not unknown, "ok" if not unknown else f"unknown tables: {unknown}")
        )
        # 3. Executability on a throwaway clone.
        try:
            clone = self.db.clone()
            for statement_sql in self._split(sql):
                clone.execute(statement_sql)
            checks.append(("execution", True, "executed cleanly"))
        except SQLError as exc:
            checks.append(("execution", False, str(exc)))
        valid = all(passed for _name, passed, _detail in checks)
        return ValidationReport(valid=valid, checks=tuple(checks))

    @staticmethod
    def _split(sql: str) -> List[str]:
        return [s.strip() for s in sql.split(";") if s.strip()]

    @staticmethod
    def _referenced_tables(statements: Sequence[ast.Statement]) -> List[str]:
        tables: List[str] = []

        def visit_source(source) -> None:
            if isinstance(source, ast.TableName):
                tables.append(source.name)
            elif isinstance(source, ast.Join):
                visit_source(source.left)
                visit_source(source.right)
            elif isinstance(source, ast.SubquerySource):
                visit_select(source.select)

        def visit_select(select: ast.Select) -> None:
            visit_source(select.source)
            for set_op in select.set_ops:
                visit_select(set_op.select)
            exprs = [i.expr for i in select.items]
            if select.where is not None:
                exprs.append(select.where)
            for expr in exprs:
                for node in ast.walk_expr(expr):
                    if isinstance(node, (ast.InSelect, ast.Exists, ast.ScalarSubquery)):
                        visit_select(node.select)

        for statement in statements:
            if isinstance(statement, ast.Select):
                visit_select(statement)
            elif isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
                tables.append(statement.table)
        return tables


class TransactionValidator:
    """Validates NL2Transaction scripts (the Alice/Bob scenario).

    Checks: wrapped in BEGIN/COMMIT, parses, executes, and — the domain
    constraint — total balance is conserved (every debit has a matching
    credit)."""

    def __init__(self, db: Database) -> None:
        self.db = db

    def validate(self, sql: str) -> ValidationReport:
        checks: List[Tuple[str, bool, str]] = []
        upper = sql.upper()
        framed = "BEGIN" in upper and "COMMIT" in upper
        checks.append(("atomicity", framed, "BEGIN/COMMIT present" if framed else "missing BEGIN/COMMIT"))
        clone = self.db.clone()
        try:
            before = clone.query_scalar("SELECT SUM(balance) FROM accounts") or 0.0
            clone.execute(sql)
            after = clone.query_scalar("SELECT SUM(balance) FROM accounts") or 0.0
            checks.append(("execution", True, "executed cleanly"))
            conserved = abs(float(before) - float(after)) < 1e-9
            checks.append(
                (
                    "balance_conservation",
                    conserved,
                    "conserved" if conserved else f"balance drifted {float(after) - float(before):+.2f}",
                )
            )
        except SQLError as exc:
            checks.append(("execution", False, str(exc)))
        valid = all(passed for _name, passed, _detail in checks)
        return ValidationReport(valid=valid, checks=tuple(checks))


# --------------------------------------------------------------------------
# Self-consistency
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConsistencyReport:
    """Majority answer and agreement level across sampled completions."""

    answer: str
    agreement: float  # fraction of samples agreeing with the majority
    samples: Tuple[str, ...]

    @property
    def unanimous(self) -> bool:
        return self.agreement == 1.0


def self_consistency(
    prompt: str,
    model: str = "gpt-3.5-turbo",
    n_samples: int = 5,
    base_seed: int = 0,
    client_factory: Optional[Callable[[int], CompletionProvider]] = None,
) -> ConsistencyReport:
    """Sample the prompt across differently seeded clients; majority-vote.

    Deterministic completions make temperature-style resampling impossible,
    so we vary the client seed — the simulator's analogue of sampling."""
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    factory = client_factory or (lambda seed: make_client(model=model, seed=seed))
    samples = [factory(base_seed + i).complete(prompt).text for i in range(n_samples)]
    majority, count = Counter(samples).most_common(1)[0]
    return ConsistencyReport(answer=majority, agreement=count / n_samples, samples=tuple(samples))


# --------------------------------------------------------------------------
# Interpretability: occlusion saliency
# --------------------------------------------------------------------------


def explain_by_occlusion(
    client: CompletionProvider,
    prompt: str,
    model: Optional[str] = None,
    max_tokens: int = 40,
) -> List[Tuple[str, float]]:
    """Token importance = answer-change when the token is occluded.

    For each distinctive word in the prompt (capped at ``max_tokens``),
    replace it with a mask and re-run the completion; importance is 1.0
    when the answer changes plus the confidence shift otherwise. This is
    genuine post-hoc attribution over the simulated model — it requires no
    access to engine internals.
    """
    baseline = client.complete(prompt, model=model)
    tokens = []
    seen = set()
    for token in words(prompt):
        lowered = token.lower()
        if len(token) < 3 or lowered in seen:
            continue
        seen.add(lowered)
        tokens.append(token)
        if len(tokens) >= max_tokens:
            break
    importances: List[Tuple[str, float]] = []
    for token in tokens:
        occluded = re.sub(rf"\b{re.escape(token)}\b", "___", prompt)
        if occluded == prompt:
            continue
        perturbed = client.complete(occluded, model=model)
        if perturbed.text != baseline.text:
            importance = 1.0
        else:
            importance = abs(perturbed.confidence - baseline.confidence)
        importances.append((token, round(importance, 4)))
    importances.sort(key=lambda t: (-t[1], t[0]))
    return importances


# --------------------------------------------------------------------------
# Human-in-the-loop
# --------------------------------------------------------------------------


@dataclass
class CrowdWorker:
    """A simulated worker who judges output validity with given accuracy."""

    worker_id: str
    accuracy: float
    seed: int = 0

    def judge(self, output_is_valid: bool, item_key: str) -> bool:
        """Vote on whether the output is valid; correct w.p. ``accuracy``."""
        rng = rng_from(f"{self.worker_id}|{self.seed}|{item_key}")
        if rng.random() < self.accuracy:
            return output_is_valid
        return not output_is_valid


@dataclass(frozen=True)
class CrowdVerdict:
    """Aggregated crowd decision for one output."""

    accepted: bool
    score: float  # fraction of accept votes
    votes: Tuple[bool, ...]


class CrowdValidator:
    """Majority-vote aggregation over simulated crowd workers.

    ``oracle`` is the deterministic check the workers approximate — in a
    deployment that is a human's judgment; in the experiments it is one of
    the validators above (so crowd accuracy is measurable)."""

    def __init__(self, n_workers: int = 5, worker_accuracy: float = 0.8, seed: int = 0) -> None:
        if n_workers <= 0:
            raise ValueError("need at least one worker")
        self.workers = [
            CrowdWorker(worker_id=f"w{i}", accuracy=worker_accuracy, seed=seed)
            for i in range(n_workers)
        ]

    def validate(self, item_key: str, oracle: bool) -> CrowdVerdict:
        votes = tuple(worker.judge(oracle, item_key) for worker in self.workers)
        score = sum(votes) / len(votes)
        return CrowdVerdict(accepted=score >= 0.5, score=score, votes=votes)
