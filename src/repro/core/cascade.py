"""LLM cascade (Section III-B1, Fig 6, Table I).

A query is sent through a chain of models ordered cheap → expensive. After
each stage, a *decision model* inspects the completion and decides whether
the answer is acceptable or the query must escalate. The last stage always
accepts.

Two decision models are provided:

* :class:`ConfidenceDecisionModel` — threshold on the completion's
  self-reported confidence (the simplest baseline);
* :class:`LearnedDecisionModel` — a logistic regressor over completion
  features (confidence, answer length, prompt length) trained on labeled
  (completion, was-it-correct) pairs — the "decision model can be trained"
  the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.llm.client import Completion
from repro.llm.provider import CompletionProvider


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of one cascaded query."""

    text: str
    model: str  # the model whose answer was accepted
    cost: float  # summed over all attempted stages
    latency_ms: float
    escalations: int  # how many stages rejected before acceptance
    attempts: tuple  # the per-stage Completions, in order

    @property
    def final(self) -> Completion:
        return self.attempts[-1]


class ConfidenceDecisionModel:
    """Accept iff the completion's confidence clears a threshold."""

    def __init__(self, threshold: float = 0.62) -> None:
        self.threshold = threshold

    def accept(self, completion: Completion) -> bool:
        return completion.confidence >= self.threshold


def completion_features(completion: Completion) -> np.ndarray:
    """Feature vector for the learned decision model."""
    return np.array(
        [
            1.0,
            completion.confidence,
            min(completion.usage.completion_tokens, 200) / 200.0,
            min(completion.usage.prompt_tokens, 2000) / 2000.0,
        ]
    )


class LearnedDecisionModel:
    """Logistic regression: P(answer is correct | completion features).

    Trained with plain batch gradient descent — tiny feature space, no
    external dependencies required.
    """

    def __init__(self, threshold: float = 0.5, learning_rate: float = 0.5, epochs: int = 300) -> None:
        self.threshold = threshold
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.weights: Optional[np.ndarray] = None

    def fit(self, completions: Sequence[Completion], labels: Sequence[bool]) -> "LearnedDecisionModel":
        """Train on labeled (completion, was-correct) pairs."""
        if len(completions) != len(labels) or not completions:
            raise ValueError("need equal, non-zero numbers of completions and labels")
        x = np.stack([completion_features(c) for c in completions])
        y = np.array([1.0 if label else 0.0 for label in labels])
        weights = np.zeros(x.shape[1])
        for _epoch in range(self.epochs):
            logits = x @ weights
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            gradient = x.T @ (probabilities - y) / len(y)
            weights -= self.learning_rate * gradient
        self.weights = weights
        return self

    def probability(self, completion: Completion) -> float:
        """P(answer is correct) under the fitted model."""
        if self.weights is None:
            raise RuntimeError("decision model is not fitted")
        logit = float(completion_features(completion) @ self.weights)
        return 1.0 / (1.0 + np.exp(-logit))

    def accept(self, completion: Completion) -> bool:
        return self.probability(completion) >= self.threshold


DEFAULT_CHAIN = ("babbage-002", "gpt-3.5-turbo", "gpt-4")


class CascadeClient:
    """Routes completions through a cheap→expensive model chain.

    >>> from repro.llm import LLMClient
    >>> cascade = CascadeClient(LLMClient())
    >>> result = cascade.complete("Question: Who directed The Silent Mirror?")
    >>> result.model in CascadeClient.DEFAULT_CHAIN
    True
    """

    DEFAULT_CHAIN = DEFAULT_CHAIN

    def __init__(
        self,
        client: CompletionProvider,
        chain: Sequence[str] = DEFAULT_CHAIN,
        decision_models: Optional[Sequence[object]] = None,
    ) -> None:
        if not chain:
            raise ValueError("cascade chain must not be empty")
        self.client = client
        self.chain = list(chain)
        if decision_models is None:
            # One decision model per non-final stage.
            decision_models = [ConfidenceDecisionModel() for _ in self.chain[:-1]]
        if len(decision_models) != len(self.chain) - 1:
            raise ValueError("need exactly one decision model per non-final stage")
        self.decision_models = list(decision_models)

    def complete(self, prompt: str) -> CascadeResult:
        """Run the cascade on one prompt."""
        attempts: List[Completion] = []
        total_cost = 0.0
        total_latency = 0.0
        for stage, model in enumerate(self.chain):
            completion = self.client.complete(prompt, model=model)
            attempts.append(completion)
            total_cost += completion.cost
            total_latency += completion.latency_ms
            is_last = stage == len(self.chain) - 1
            if is_last or self.decision_models[stage].accept(completion):
                return CascadeResult(
                    text=completion.text,
                    model=model,
                    cost=total_cost,
                    latency_ms=total_latency,
                    escalations=stage,
                    attempts=tuple(attempts),
                )
        raise AssertionError("unreachable: final stage always accepts")
