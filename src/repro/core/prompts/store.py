"""Historical prompt store over the vector database (Section III-A).

Prompts are embedded and stored in a :class:`repro.vectordb.Collection`
along with outcome metadata (did the downstream task succeed, at what
cost). Retrieval supports the two modes the paper contrasts:

* plain similarity search ("the common practice"), and
* **performance-aware** search — the paper's envisioned "index that caters
  to the optimal prompt": candidates are re-ranked by a blend of similarity
  and historical success rate, so a slightly-less-similar prompt that has
  worked reliably beats a near-duplicate that has not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.llm.embeddings import EmbeddingModel
from repro.vectordb import Collection, Metric


@dataclass
class PromptRecord:
    """One stored historical prompt with outcome statistics."""

    prompt_id: str
    text: str
    task: str
    successes: int = 0
    failures: int = 0

    @property
    def trials(self) -> int:
        return self.successes + self.failures

    @property
    def success_rate(self) -> float:
        """Laplace-smoothed success rate (prior 0.5 with 2 pseudo-trials)."""
        return (self.successes + 1) / (self.trials + 2)


class PromptStore:
    """Vector-indexed store of historical prompts with outcome feedback."""

    def __init__(self, embedding_dim: int = 64, index: str = "flat") -> None:
        self.embedder = EmbeddingModel(dim=embedding_dim)
        self.collection = Collection(dim=embedding_dim, metric=Metric.COSINE, index=index)
        self.records: dict = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self.records)

    def add(self, text: str, task: str = "generic") -> PromptRecord:
        """Store a prompt; returns its record (idempotent on same text+task)."""
        for record in self.records.values():
            if record.text == text and record.task == task:
                return record
        prompt_id = f"p{self._counter}"
        self._counter += 1
        record = PromptRecord(prompt_id=prompt_id, text=text, task=task)
        self.records[prompt_id] = record
        self.collection.add(
            prompt_id,
            self.embedder.embed(text),
            metadata={"task": task},
            payload=record,
        )
        return record

    def record_outcome(self, prompt_id: str, success: bool) -> None:
        """Feed back whether the prompt led to a correct downstream result."""
        record = self.records[prompt_id]
        if success:
            record.successes += 1
        else:
            record.failures += 1

    def remove(self, prompt_id: str) -> None:
        self.collection.remove(prompt_id)
        del self.records[prompt_id]

    # ------------------------------------------------------------ retrieval

    def search_similar(
        self, query: str, k: int = 5, task: Optional[str] = None
    ) -> List[PromptRecord]:
        """Plain vector-similarity retrieval (the baseline)."""
        where = {"task": task} if task else None
        report = self.collection.search(self.embedder.embed(query), k=k, where=where)
        return [hit.payload for hit in report.hits]

    def compose_examples(
        self,
        query: str,
        k: int = 4,
        task: Optional[str] = None,
        performance_weight: float = 0.5,
    ) -> List[tuple]:
        """Build a few-shot example list for a new query from history.

        This is the paper's "select appropriate historical prompts and use
        them to generate new prompts automatically": stored records whose
        text is a ``Question: ... Answer: ...`` pair are retrieved
        performance-aware and parsed back into (question, answer) tuples
        ready for :func:`repro.core.prompts.templates.qa_prompt`.
        """
        import re as _re

        pair_re = _re.compile(r"(?is)^question:\s*(.+?)\s*answer:\s*(.+?)\s*$")
        records = self.search_performance_aware(
            query, k=k, task=task, performance_weight=performance_weight
        )
        examples = []
        for record in records:
            m = pair_re.match(record.text.strip())
            if m:
                examples.append((m.group(1).strip(), m.group(2).strip()))
        return examples

    @staticmethod
    def example_text(question: str, answer: str) -> str:
        """Canonical stored-record text for a QA example pair."""
        return f"Question: {question} Answer: {answer}"

    def search_performance_aware(
        self,
        query: str,
        k: int = 5,
        task: Optional[str] = None,
        performance_weight: float = 0.5,
        candidate_multiplier: int = 4,
    ) -> List[PromptRecord]:
        """Similarity-retrieve a wide candidate set, then re-rank by
        ``(1-w) * similarity + w * success_rate`` — the learned-index-for-
        optimal-prompt idea, reduced to an explicit re-ranker."""
        where = {"task": task} if task else None
        report = self.collection.search(
            self.embedder.embed(query), k=k * candidate_multiplier, where=where
        )
        scored = []
        for hit in report.hits:
            record: PromptRecord = hit.payload
            score = (1 - performance_weight) * hit.score + performance_weight * record.success_rate
            scored.append((score, record))
        scored.sort(key=lambda t: -t[0])
        return [record for _score, record in scored[:k]]
