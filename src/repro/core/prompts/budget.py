"""Budget-constrained prompt retention (Section III-A).

"Determining which historical prompts should be stored within a limited
budget is also important. We envision that reinforcement learning
algorithms can be designed to determine the most promising prompts."

Two retention policies:

* :func:`greedy_budget_selection` — a value-density knapsack heuristic:
  keep prompts maximizing expected utility per token until the budget is
  exhausted (the classical baseline);
* :class:`BanditPromptSelector` — an epsilon-greedy multi-armed bandit that
  learns each prompt's utility online from downstream success feedback and
  periodically evicts the lowest-value arms to fit the budget (the RL
  direction the paper envisions, in its simplest defensible form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util import rng_from
from repro.core.prompts.store import PromptRecord
from repro.llm.tokenizer import count_tokens


def greedy_budget_selection(
    records: Sequence[PromptRecord], token_budget: int
) -> List[PromptRecord]:
    """Keep prompts in decreasing (success_rate / tokens) density order."""
    if token_budget <= 0:
        return []
    scored = sorted(
        records,
        key=lambda r: (-(r.success_rate / max(1, count_tokens(r.text))), r.prompt_id),
    )
    kept: List[PromptRecord] = []
    used = 0
    for record in scored:
        tokens = count_tokens(record.text)
        if used + tokens <= token_budget:
            kept.append(record)
            used += tokens
    return kept


@dataclass
class _Arm:
    record: PromptRecord
    pulls: int = 0
    reward: float = 0.0

    @property
    def mean_reward(self) -> float:
        """Optimistic prior (0.6) before any pulls, to encourage trying."""
        if self.pulls == 0:
            return 0.6
        return self.reward / self.pulls


class BanditPromptSelector:
    """Epsilon-greedy bandit over stored prompts with budgeted eviction."""

    def __init__(self, token_budget: int, epsilon: float = 0.15, seed: int = 0) -> None:
        if token_budget <= 0:
            raise ValueError("token_budget must be positive")
        self.token_budget = token_budget
        self.epsilon = epsilon
        self._rng = rng_from(seed)
        self._arms: Dict[str, _Arm] = {}

    # -- membership -------------------------------------------------------

    def offer(self, record: PromptRecord) -> bool:
        """Try to admit a prompt; evicts weaker arms if needed.

        Returns True when the prompt is (now) stored.
        """
        if record.prompt_id in self._arms:
            return True
        tokens = count_tokens(record.text)
        if tokens > self.token_budget:
            return False
        while self._used_tokens() + tokens > self.token_budget:
            victim = min(self._arms.values(), key=lambda a: (a.mean_reward, a.record.prompt_id))
            # Refuse admission if the newcomer is no better than the victim.
            newcomer_estimate = record.success_rate if record.trials else 0.6
            if victim.mean_reward >= newcomer_estimate:
                return False
            del self._arms[victim.record.prompt_id]
        self._arms[record.prompt_id] = _Arm(record=record)
        return True

    def _used_tokens(self) -> int:
        return sum(count_tokens(a.record.text) for a in self._arms.values())

    # -- selection / feedback ----------------------------------------------

    def select(self) -> Optional[PromptRecord]:
        """Pick a prompt: explore with prob. epsilon, else exploit."""
        if not self._arms:
            return None
        arms = sorted(self._arms.values(), key=lambda a: a.record.prompt_id)
        if self._rng.random() < self.epsilon:
            return arms[int(self._rng.integers(0, len(arms)))].record
        return max(arms, key=lambda a: (a.mean_reward, a.record.prompt_id)).record

    def feedback(self, prompt_id: str, reward: float) -> None:
        """Report downstream utility (1.0 success / 0.0 failure) for a pull."""
        arm = self._arms.get(prompt_id)
        if arm is None:
            return
        arm.pulls += 1
        arm.reward += reward

    def stored(self) -> List[PromptRecord]:
        return [a.record for a in self._arms.values()]

    def utilization(self) -> float:
        return self._used_tokens() / self.token_budget
