"""Prompt templates for every task family in the library.

These are the canonical prompt shapes the simulated LLM's engines route on;
applications build prompts exclusively through these helpers so that prompt
structure is consistent and centrally optimizable (the Section III-A point:
prompts in data management are domain-heavy and should be curated, not
ad-hoc).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PromptTemplate:
    """A named template with ``{field}`` placeholders.

    >>> t = PromptTemplate("qa", "Question: {question}")
    >>> t.render(question="Who?")
    'Question: Who?'
    """

    name: str
    text: str

    def render(self, **fields: object) -> str:
        return self.text.format(**fields)


def qa_prompt(
    question: str,
    examples: Optional[Sequence[Tuple[str, str]]] = None,
    context: Optional[Sequence[str]] = None,
) -> str:
    """Few-shot QA prompt; examples are (question, answer) pairs and
    ``context`` carries supporting passages (the HotpotQA prompt shape)."""
    lines = ["Answer the question with a single name or value."]
    for passage in context or []:
        lines.append(f"Context: {passage}")
    for i, (q, a) in enumerate(examples or [], start=1):
        lines.append(f"Example {i}: Question: {q} Answer: {a}")
    lines.append(f"Question: {question}")
    return "\n".join(lines)


def nl2sql_prompt(
    question: str,
    schema: str,
    examples: Optional[Sequence[Tuple[str, str]]] = None,
) -> str:
    """DAIL-SQL-style NL2SQL prompt: schema, examples, then the question."""
    lines = ["Translate the question into SQL over the following schema.", schema.strip()]
    for i, (q, sql) in enumerate(examples or [], start=1):
        lines.append(f"Example {i}: Question: {q}\nSQL: {sql}")
    lines.append(f"Question: {question}")
    return "\n".join(lines)


def transaction_prompt(scenario: str, schema: str = "CREATE TABLE accounts (owner TEXT PRIMARY KEY, balance REAL);") -> str:
    """NL2Transaction prompt (Section II-B1's Alice/Bob example)."""
    return (
        "Translate the scenario into an atomic SQL transaction over the schema.\n"
        f"{schema.strip()}\n"
        f"Scenario: {scenario}"
    )


def entity_match_prompt(a: str, b: str, examples: Optional[Sequence[Tuple[str, str, bool]]] = None) -> str:
    """The paper's entity-resolution prompt (Section II-C1)."""
    lines = ["Are the following entity descriptions the same real-world entity? Answer yes or no."]
    for i, (ex_a, ex_b, label) in enumerate(examples or [], start=1):
        lines.append(
            f"Example {i}: Entity A: {ex_a}\nEntity B: {ex_b}\nAnswer: {'yes' if label else 'no'}"
        )
    lines.append(f"Entity A: {a}\nEntity B: {b}\nAnswer:")
    return "\n".join(lines)


def schema_match_prompt(
    name_a: str, values_a: Sequence[str], name_b: str, values_b: Sequence[str]
) -> str:
    """Schema matching: do two columns denote the same attribute?"""
    return (
        "Do the following two columns refer to the same attribute? Answer yes or no.\n"
        f"Column A ({name_a}): {'||'.join(values_a)}\n"
        f"Column B ({name_b}): {'||'.join(values_b)}\n"
        "Answer:"
    )


def column_type_prompt(
    candidate_types: Sequence[str],
    examples: Sequence[Tuple[Sequence[str], str]],
    values: Sequence[str],
) -> str:
    """The paper's column-type annotation prompt, verbatim structure."""
    lines = [
        f"Given the following column types: {', '.join(candidate_types)}.",
        "You need to predict the column type according to the column values.",
    ]
    for i, (example_values, label) in enumerate(examples, start=1):
        lines.append(f"({i}) {'||'.join(example_values)}, this column type is {label}.")
    lines.append(f"{'||'.join(values)}, this column type is __.")
    return "\n".join(lines)


def label_infer_prompt(target: str, rows: Sequence[str], query_row: str) -> str:
    """Missing-field annotation over serialized rows (Section II-A2)."""
    lines = [f"Predict the value of '{target}' for the last row."]
    for row in rows:
        lines.append(f"Row: {row}")
    lines.append(f"Row: {query_row}")
    return "\n".join(lines)


def exec_time_prompt(examples: Sequence[Tuple[str, float]], query_features: str) -> str:
    """Execution-time prediction prompt (Fig 3): feature lines + query."""
    lines = ["Predict the execution time in milliseconds."]
    for features, time_ms in examples:
        lines.append(f"features: {features} -> execution_time: {time_ms:.4f}")
    lines.append(f"features: {query_features} -> execution_time: ?")
    return "\n".join(lines)


def sqlgen_prompt(schema: str, count: int, kinds: Sequence[str]) -> str:
    """SQL generation prompt (Fig 2): schema + constraints."""
    return (
        f"Generate {count} SQL queries over the following schema.\n"
        f"{schema.strip()}\n"
        f"Constraints: kinds={','.join(kinds)}"
    )


def table_extract_prompt(document: str) -> str:
    """Semi-structured → relational extraction prompt (Fig 4)."""
    return (
        "Extract a relational table from the following document. "
        "Output the header row then one row per record, pipe-separated.\n"
        f"{document.strip()}"
    )


def pattern_mine_prompt(values: Sequence[str]) -> str:
    """Column pattern mining prompt (Section II-B3)."""
    return (
        "Mine the pattern of the following column values.\n"
        f"Values: {'||'.join(values)}"
    )


def operator_synthesis_prompt(rendered_grid: str, has_header: bool) -> str:
    """Operator-sequence synthesis for table relationalization."""
    return (
        "Synthesize the operator sequence to relationalize the following table.\n"
        f"Has header: {'yes' if has_header else 'no'}\n"
        f"Table:\n{rendered_grid.strip()}\n"
    )


def prep_code_prompt(operation: str) -> str:
    """Per-operation code synthesis for data-prep pipelines (II-B4)."""
    return f"Write Python code for the data preparation operation: {operation}"


def sql2nl_prompt(sql: str, result: Optional[object] = None) -> str:
    """SQL→NL description prompt (table understanding, Section II-C2)."""
    suffix = f"\nResult: {result}" if result is not None else ""
    return f"Describe the following SQL query and its result in one sentence.\nSQL: {sql}{suffix}"


def row_serialize_prompt(table: str, row: Dict[str, object]) -> str:
    """Row → NL serialization prompt."""
    row_text = "; ".join(f"{k}: {v}" for k, v in row.items())
    return (
        "Serialize the following row into a natural language sentence.\n"
        f"Table: {table}\n"
        f"Row: {row_text}"
    )
