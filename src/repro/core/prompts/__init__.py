"""Prompt optimization (Section III-A).

* :mod:`repro.core.prompts.templates` — the prompt template library every
  application uses (the engines' routing patterns match these templates).
* :mod:`repro.core.prompts.store` — historical prompt store over the vector
  database, with similarity-based and performance-aware retrieval.
* :mod:`repro.core.prompts.selector` — few-shot example selection
  (similarity, diversity-aware MMR).
* :mod:`repro.core.prompts.budget` — budget-constrained prompt retention
  (greedy value/size and an epsilon-greedy bandit, the paper's envisioned
  RL direction).
"""

from repro.core.prompts.budget import BanditPromptSelector, greedy_budget_selection
from repro.core.prompts.selector import mmr_select, similarity_select
from repro.core.prompts.store import PromptRecord, PromptStore
from repro.core.prompts.templates import (
    PromptTemplate,
    column_type_prompt,
    entity_match_prompt,
    exec_time_prompt,
    label_infer_prompt,
    nl2sql_prompt,
    pattern_mine_prompt,
    qa_prompt,
    row_serialize_prompt,
    schema_match_prompt,
    sql2nl_prompt,
    sqlgen_prompt,
    table_extract_prompt,
    transaction_prompt,
)

__all__ = [
    "BanditPromptSelector",
    "PromptRecord",
    "PromptStore",
    "PromptTemplate",
    "column_type_prompt",
    "entity_match_prompt",
    "exec_time_prompt",
    "greedy_budget_selection",
    "label_infer_prompt",
    "mmr_select",
    "nl2sql_prompt",
    "pattern_mine_prompt",
    "qa_prompt",
    "row_serialize_prompt",
    "schema_match_prompt",
    "similarity_select",
    "sql2nl_prompt",
    "sqlgen_prompt",
    "table_extract_prompt",
    "transaction_prompt",
]
