"""Few-shot example selection: similarity and diversity-aware (MMR).

Selecting which examples to put in a prompt is the operational half of
prompt optimization: similar examples help the model most, but redundant
ones waste tokens (the observation behind query combination's example
dedup). ``mmr_select`` implements maximal marginal relevance over the
simulated embedding space.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

import numpy as np

from repro._util import cosine
from repro.llm.embeddings import EmbeddingModel

T = TypeVar("T")


def similarity_select(
    query: str,
    candidates: Sequence[T],
    k: int,
    text_of: Callable[[T], str],
    embedder: EmbeddingModel = None,
) -> List[T]:
    """Top-k candidates by embedding similarity to the query."""
    if k <= 0 or not candidates:
        return []
    embedder = embedder or EmbeddingModel()
    query_vec = embedder.embed(query)
    scored = [
        (cosine(query_vec, embedder.embed(text_of(c))), i, c)
        for i, c in enumerate(candidates)
    ]
    scored.sort(key=lambda t: (-t[0], t[1]))
    return [c for _s, _i, c in scored[:k]]


def mmr_select(
    query: str,
    candidates: Sequence[T],
    k: int,
    text_of: Callable[[T], str],
    lambda_relevance: float = 0.7,
    embedder: EmbeddingModel = None,
) -> List[T]:
    """Maximal-marginal-relevance selection: relevant *and* diverse.

    Score of a candidate = ``λ·sim(query, c) − (1−λ)·max sim(c, selected)``.
    """
    if k <= 0 or not candidates:
        return []
    embedder = embedder or EmbeddingModel()
    query_vec = embedder.embed(query)
    vectors = [embedder.embed(text_of(c)) for c in candidates]
    relevance = [cosine(query_vec, v) for v in vectors]

    selected: List[int] = []
    remaining = list(range(len(candidates)))
    while remaining and len(selected) < k:
        def mmr_score(idx: int) -> float:
            redundancy = max(
                (cosine(vectors[idx], vectors[j]) for j in selected), default=0.0
            )
            return lambda_relevance * relevance[idx] - (1 - lambda_relevance) * redundancy

        best = max(remaining, key=lambda idx: (mmr_score(idx), -idx))
        selected.append(best)
        remaining.remove(best)
    return [candidates[i] for i in selected]
