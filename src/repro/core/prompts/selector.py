"""Few-shot example selection: similarity and diversity-aware (MMR).

Selecting which examples to put in a prompt is the operational half of
prompt optimization: similar examples help the model most, but redundant
ones waste tokens (the observation behind query combination's example
dedup). ``mmr_select`` implements maximal marginal relevance over the
simulated embedding space.

Both selectors are vectorized: candidates are embedded once as an
(n, dim) matrix via :meth:`EmbeddingModel.embed_batch`, the relevance
vector is one matrix reduction, and each MMR round updates the redundancy
penalties with a single row-versus-matrix product — no per-candidate
Python loop on the scoring path.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.llm.embeddings import EmbeddingModel

T = TypeVar("T")


def _cosines_to(
    matrix: np.ndarray, vec: np.ndarray, norms: Optional[np.ndarray] = None
) -> np.ndarray:
    """Cosine of ``vec`` against every row of ``matrix`` (0.0 on zeros).

    ``norms`` may carry precomputed ``np.linalg.norm(matrix, axis=1)`` —
    the same reduction this function would run, so passing it changes
    nothing but the work done."""
    qn = float(np.linalg.norm(vec))
    if norms is None:
        norms = np.linalg.norm(matrix, axis=1)
    denom = norms * qn
    dots = matrix @ vec
    return np.divide(dots, denom, out=np.zeros_like(dots), where=denom > 0)


def _stable_topk(sims: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest sims, ordered desc with lowest-index ties.

    Exactly ``np.argsort(-sims, kind="stable")[:k]``, but via a partial
    partition: ties straddling the k-boundary are resolved explicitly by
    index, so the result is identical to the full stable sort."""
    n = sims.shape[0]
    if k >= n:
        return np.argsort(-sims, kind="stable")
    threshold = sims[np.argpartition(-sims, k - 1)[k - 1]]
    above = np.flatnonzero(sims > threshold)
    ties = np.flatnonzero(sims == threshold)[: k - above.size]
    chosen = np.concatenate([above, ties])
    return chosen[np.argsort(-sims[chosen], kind="stable")]


def similarity_select(
    query: str,
    candidates: Sequence[T],
    k: int,
    text_of: Callable[[T], str],
    embedder: Optional[EmbeddingModel] = None,
) -> List[T]:
    """Top-k candidates by embedding similarity to the query.

    Ties keep candidate order (stable sort), matching a scored linear scan.
    """
    if k <= 0 or not candidates:
        return []
    embedder = embedder or EmbeddingModel()
    query_vec = embedder.embed(query)
    vectors, norms = embedder.embed_matrix([text_of(c) for c in candidates])
    sims = _cosines_to(vectors, query_vec, norms=norms)
    order = _stable_topk(sims, k)
    return [candidates[int(i)] for i in order]


def mmr_select(
    query: str,
    candidates: Sequence[T],
    k: int,
    text_of: Callable[[T], str],
    lambda_relevance: float = 0.7,
    embedder: Optional[EmbeddingModel] = None,
) -> List[T]:
    """Maximal-marginal-relevance selection: relevant *and* diverse.

    Score of a candidate = ``λ·sim(query, c) − (1−λ)·max sim(c, selected)``.

    Each round picks the highest-scoring remaining candidate (lowest index
    on ties) and folds its similarities into the running redundancy maxima
    with one vectorized update, so a full selection is O(k·n) numpy work.
    """
    if k <= 0 or not candidates:
        return []
    embedder = embedder or EmbeddingModel()
    query_vec = embedder.embed(query)
    vectors, norms = embedder.embed_matrix([text_of(c) for c in candidates])
    relevance = _cosines_to(vectors, query_vec, norms=norms)

    n = len(candidates)
    # max similarity to any selected candidate; 0.0 while nothing selected
    # (the linear scan's `max(..., default=0.0)`).
    redundancy = np.zeros(n, dtype=np.float64)
    picked_any = False
    available = np.ones(n, dtype=bool)
    selected: List[int] = []
    for _round in range(min(k, n)):
        scores = lambda_relevance * relevance - (1 - lambda_relevance) * redundancy
        scores[~available] = -np.inf
        best = int(np.argmax(scores))  # first max == lowest-index tie-break
        selected.append(best)
        available[best] = False
        sims_to_best = _cosines_to(vectors, vectors[best], norms=norms)
        redundancy = sims_to_best if not picked_any else np.maximum(redundancy, sims_to_best)
        picked_any = True
    return [candidates[i] for i in selected]
