"""repro.core — the paper's Section III contributions.

One module per challenge the paper identifies:

* :mod:`repro.core.prompts` — LLM prompt optimization (III-A): templates,
  historical prompt store over the vector database, performance-aware
  selection, budget-constrained retention.
* :mod:`repro.core.cascade` — cost-efficient LLM queries via model cascades
  (III-B1, Fig 6, Table I).
* :mod:`repro.core.decompose` — query decomposition & combination
  (III-B1, Fig 7, Table II).
* :mod:`repro.core.cache` — the semantic LLM cache (III-C, Table III).
* :mod:`repro.core.hybrid` — multi-modal hybrid query planning (III-B2).
* :mod:`repro.core.privacy` — DP training, federated fine-tuning and
  membership-inference evaluation (III-D).
* :mod:`repro.core.validation` — LLM output validation (III-E).
"""

from repro.core.cascade import CascadeClient, CascadeResult, ConfidenceDecisionModel, LearnedDecisionModel
from repro.core.cache import (
    AdmissionPredictor,
    CachedLLMClient,
    CacheStats,
    EvictionPolicy,
    SemanticCache,
)
from repro.core.decompose import (
    CombinedPlan,
    DecomposedQuery,
    QueryOptimizer,
    shared_subquery_plan,
)
from repro.core.hybrid import AdaptiveKPredictor, HybridPlanner, LearnedOrderRouter

__all__ = [
    "AdaptiveKPredictor",
    "AdmissionPredictor",
    "CacheStats",
    "CachedLLMClient",
    "CascadeClient",
    "CascadeResult",
    "CombinedPlan",
    "ConfidenceDecisionModel",
    "DecomposedQuery",
    "EvictionPolicy",
    "HybridPlanner",
    "LearnedDecisionModel",
    "LearnedOrderRouter",
    "QueryOptimizer",
    "SemanticCache",
    "shared_subquery_plan",
]
