"""Multi-modal hybrid query planning (Section III-B2).

Three pieces, matching the paper's discussion:

* :class:`HybridPlanner` — chooses the order of attribute filtering vs
  vector search per query (rule-based on estimated selectivity, or via a
  learned router) and executes against a :class:`repro.vectordb.Collection`;
* :class:`LearnedOrderRouter` — a logistic model over (selectivity, k,
  collection size) trained from observed per-strategy costs, the paper's
  "train a classification model to predict which order to use";
* :class:`AdaptiveKPredictor` — predicts how much to widen ``k`` for
  vector-first search so the post-filter still returns ``k`` items (the
  paper's "predict an appropriate k value" against the null-result
  pathology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.vectordb import Collection, FilterStrategy, MetadataFilter, SearchReport


@dataclass(frozen=True)
class PlanDecision:
    """The planner's choice and its rationale for one query."""

    strategy: FilterStrategy
    estimated_selectivity: float
    widened_k: int


class AdaptiveKPredictor:
    """Learns the over-fetch factor for vector-first filtered search.

    Maintains a running quantile-style estimate of the factor
    ``needed_k / requested_k`` observed on past queries; predicts with a
    safety margin. Falls back to ``1.5 / selectivity`` before any feedback.
    """

    def __init__(self, safety: float = 1.3, max_factor: float = 50.0) -> None:
        self.safety = safety
        self.max_factor = max_factor
        self._observed: List[float] = []

    def predict_k(self, requested_k: int, selectivity: float) -> int:
        """Widened k for vector-first search at this selectivity."""
        if self._observed:
            # 90th percentile of observed factors, with safety margin.
            factor = float(np.quantile(self._observed, 0.9)) * self.safety
        else:
            factor = self.safety / max(selectivity, 1e-3)
        factor = min(max(factor, 1.0), self.max_factor)
        return max(requested_k, int(np.ceil(requested_k * factor)))

    def observe(self, requested_k: int, scanned_k: int, returned: int) -> None:
        """Record how deep the scan had to go to fill the result."""
        if returned <= 0 or requested_k <= 0:
            # A null result: remember a pessimistic factor.
            self._observed.append(min(self.max_factor, 2.0 * max(1, scanned_k) / max(1, requested_k)))
            return
        effective = scanned_k * (requested_k / returned) / requested_k
        self._observed.append(min(self.max_factor, max(1.0, effective)))


class LearnedOrderRouter:
    """Logistic router: predict whether PRE beats POST for a query.

    Features: estimated selectivity, log collection size, requested k.
    Trained from observed (features, pre_cost < post_cost) pairs gathered
    by running both strategies on a sample workload.
    """

    def __init__(self, learning_rate: float = 0.5, epochs: int = 400) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.weights: Optional[np.ndarray] = None

    @staticmethod
    def _features(selectivity: float, collection_size: int, k: int) -> np.ndarray:
        return np.array(
            [1.0, selectivity, np.log1p(collection_size) / 10.0, min(k, 100) / 100.0]
        )

    def fit(self, samples: Sequence[Tuple[float, int, int, bool]]) -> "LearnedOrderRouter":
        """``samples``: (selectivity, collection_size, k, pre_was_better)."""
        if not samples:
            raise ValueError("need at least one training sample")
        x = np.stack([self._features(s, n, k) for s, n, k, _label in samples])
        y = np.array([1.0 if label else 0.0 for _s, _n, _k, label in samples])
        weights = np.zeros(x.shape[1])
        for _epoch in range(self.epochs):
            p = 1.0 / (1.0 + np.exp(-(x @ weights)))
            weights -= self.learning_rate * (x.T @ (p - y)) / len(y)
        self.weights = weights
        return self

    def prefer_pre(self, selectivity: float, collection_size: int, k: int) -> bool:
        """True when the model predicts PRE beats POST here."""
        if self.weights is None:
            raise RuntimeError("router is not fitted")
        logit = float(self._features(selectivity, collection_size, k) @ self.weights)
        return logit >= 0.0


class HybridPlanner:
    """Per-query strategy selection + execution over a Collection."""

    def __init__(
        self,
        collection: Collection,
        router: Optional[LearnedOrderRouter] = None,
        k_predictor: Optional[AdaptiveKPredictor] = None,
        selectivity_cutoff: float = 0.25,
    ) -> None:
        self.collection = collection
        self.router = router
        self.k_predictor = k_predictor or AdaptiveKPredictor()
        self.selectivity_cutoff = selectivity_cutoff

    def plan(self, where: Optional[Mapping[str, object]], k: int) -> PlanDecision:
        """Decide strategy and widened k for a query."""
        metadata_filter = MetadataFilter(where)
        metadatas = [self.collection.get_metadata(i) for i in self.collection.ids()]
        selectivity = metadata_filter.selectivity(metadatas) if metadata_filter else 1.0
        if not metadata_filter:
            return PlanDecision(strategy=FilterStrategy.POST, estimated_selectivity=1.0, widened_k=k)
        if self.router is not None and self.router.weights is not None:
            pre = self.router.prefer_pre(selectivity, len(self.collection), k)
        else:
            pre = selectivity <= self.selectivity_cutoff
        strategy = FilterStrategy.PRE if pre else FilterStrategy.POST
        widened = k if pre else self.k_predictor.predict_k(k, selectivity)
        return PlanDecision(strategy=strategy, estimated_selectivity=selectivity, widened_k=widened)

    def search(
        self,
        query_vector: np.ndarray,
        k: int,
        where: Optional[Mapping[str, object]] = None,
    ) -> Tuple[SearchReport, PlanDecision]:
        """Plan, execute, and feed the outcome back to the k predictor."""
        decision = self.plan(where, k)
        previous_overfetch = self.collection.overfetch
        if decision.strategy is FilterStrategy.POST and where:
            self.collection.overfetch = max(1.0, decision.widened_k / max(k, 1))
        try:
            report = self.collection.search(query_vector, k=k, where=where, strategy=decision.strategy)
        finally:
            self.collection.overfetch = previous_overfetch
        if decision.strategy is FilterStrategy.POST and where:
            self.k_predictor.observe(k, report.candidates_scanned, len(report.hits))
        return report, decision
