"""Query decomposition & combination (Section III-B1, Fig 7, Table II).

Two task families get decomposition support:

**NL2SQL** — compound stadium questions split into atomic sub-questions on
the connector phrases ("or had" → UNION, "and had" → INTERSECT, "but did
not have" → EXCEPT). Across a workload, identical sub-questions are
translated **once** (the Fig 7 sharing), and *combination* additionally
shares one prompt prefix (schema + few-shot examples) across all
sub-questions of a batch via :meth:`LLMClient.complete_batch`.

**Multi-hop QA** — bridge questions become a two-step chain (answer of step
one is substituted into step two); comparison questions become two
attribute lookups recombined by a comparator. This is the decomposition the
sub-query cache (Table III, Cache(A)) stores.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.llm.provider import CompletionProvider

# --------------------------------------------------------------------------
# NL2SQL decomposition
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DecomposedQuery:
    """A compound NL question split into atomic sub-questions."""

    question: str
    sub_questions: Tuple[str, ...]
    recompose_op: Optional[str]  # None = not decomposable (atomic)

    @property
    def is_compound(self) -> bool:
        return self.recompose_op is not None


def decompose_nl_question(question: str) -> DecomposedQuery:
    """Split a registered-domain NL question on its connector phrase.

    Domains come from :data:`repro.llm.engines.nl2sql.DOMAINS`, so the
    decomposer and the translator always agree on the grammar."""
    from repro.llm.engines.nl2sql import DOMAINS

    text = question.strip().rstrip("?")
    for domain in DOMAINS:
        prefix_match = domain.prefix_pattern().match(text + " ")
        if prefix_match is None:
            continue
        remainder = (text + " ")[prefix_match.end():].strip()
        for connector, op, event in sorted(
            domain.connectors(), key=lambda c: ("EXCEPT", "INTERSECT", "UNION").index(c[1])
        ):
            idx = remainder.lower().find(connector)
            if idx < 0:
                continue
            left = remainder[:idx].strip()
            right = remainder[idx + len(connector):].strip()
            left_q = (
                f"What are the names of {domain.entity_phrase} "
                f"{_normalize_clause(domain, left)}?"
            )
            right_q = (
                f"What are the names of {domain.entity_phrase} that {event.verb} {right}?"
            )
            return DecomposedQuery(
                question=question, sub_questions=(left_q, right_q), recompose_op=op
            )
        break  # prefix matched but no connector: atomic domain question
    return DecomposedQuery(question=question, sub_questions=(question,), recompose_op=None)


def _normalize_clause(domain, clause: str) -> str:
    clause = clause.strip()
    lowered = clause.lower()
    verbs = {event.verb for event in domain.events}
    if any(lowered.startswith(f"that {verb}") for verb in verbs):
        return clause
    if any(lowered.startswith(verb) for verb in verbs):
        return "that " + clause
    default_verb = domain.events[0].verb
    return f"that {default_verb} " + clause


def recompose_sql(sub_sqls: Sequence[str], op: str) -> str:
    """Stitch translated sub-queries back together with the set operator."""
    if len(sub_sqls) < 2:
        return sub_sqls[0] if sub_sqls else ""
    return f" {op} ".join(sub_sqls)


@dataclass
class CombinedPlan:
    """What :func:`shared_subquery_plan` computes for a workload (Fig 7)."""

    questions: List[str]
    decompositions: List[DecomposedQuery]
    unique_sub_questions: List[str]
    total_sub_references: int

    @property
    def llm_calls_saved(self) -> int:
        """Calls avoided by answering each shared sub-question once."""
        return self.total_sub_references - len(self.unique_sub_questions)

    @property
    def sharing_ratio(self) -> float:
        if self.total_sub_references == 0:
            return 0.0
        return self.llm_calls_saved / self.total_sub_references


def shared_subquery_plan(questions: Sequence[str]) -> CombinedPlan:
    """Decompose a workload and compute the sub-query sharing structure."""
    decompositions = [decompose_nl_question(q) for q in questions]
    unique: List[str] = []
    seen = set()
    total = 0
    for decomposition in decompositions:
        for sub in decomposition.sub_questions:
            total += 1
            key = sub.lower()
            if key not in seen:
                seen.add(key)
                unique.append(sub)
    return CombinedPlan(
        questions=list(questions),
        decompositions=decompositions,
        unique_sub_questions=unique,
        total_sub_references=total,
    )


class QueryOptimizer:
    """Runs an NL2SQL workload under the three Table II regimes.

    Parameters
    ----------
    client:
        The LLM client (its meter accumulates the workload cost).
    schema:
        CREATE TABLE text included in every prompt.
    examples:
        Few-shot (question, SQL) pairs included in every prompt.
    model:
        Model name (Table II uses the gpt-4 class, as DAIL-SQL does).
    """

    def __init__(
        self,
        client: CompletionProvider,
        schema: str,
        examples: Sequence[Tuple[str, str]] = (),
        model: str = "gpt-4",
    ) -> None:
        self.client = client
        self.schema = schema
        self.examples = list(examples)
        self.model = model

    # -- prompt construction -------------------------------------------------

    def _prefix(self) -> str:
        from repro.core.prompts.templates import nl2sql_prompt

        # Render the shared prefix by templating an empty question and
        # stripping the trailing marker.
        rendered = nl2sql_prompt("\x00", self.schema, self.examples)
        return rendered[: rendered.index("Question: \x00")]

    def _full_prompt(self, question: str) -> str:
        from repro.core.prompts.templates import nl2sql_prompt

        return nl2sql_prompt(question, self.schema, self.examples)

    # -- regimes ---------------------------------------------------------

    def translate_origin(self, questions: Sequence[str]) -> List[str]:
        """Baseline: one full prompt per original question."""
        return [self.client.complete(self._full_prompt(q), model=self.model).text for q in questions]

    def translate_decomposed(self, questions: Sequence[str]) -> List[str]:
        """Decomposition: translate unique sub-questions once, recompose."""
        plan = shared_subquery_plan(questions)
        sub_sql: Dict[str, str] = {}
        for sub in plan.unique_sub_questions:
            sub_sql[sub.lower()] = self.client.complete(
                self._full_prompt(sub), model=self.model
            ).text
        return self._recompose_all(plan, sub_sql)

    def translate_decomposed_combined(self, questions: Sequence[str]) -> List[str]:
        """Decomposition + combination: sub-questions share one prompt
        prefix (schema + examples), eliminating redundant example tokens."""
        plan = shared_subquery_plan(questions)
        prefix = self._prefix()
        items = [f"Question: {sub}" for sub in plan.unique_sub_questions]
        completions = self.client.complete_batch(prefix, items, model=self.model)
        sub_sql = {
            sub.lower(): completion.text
            for sub, completion in zip(plan.unique_sub_questions, completions)
        }
        return self._recompose_all(plan, sub_sql)

    def translate_min_cost(self, questions: Sequence[str]) -> Tuple[List[str], Dict[str, int]]:
        """Min-cost covering-set regime (Section III-B1's open algorithm).

        "The total costs of decomposed sub-queries is larger than the
        original query ... query decomposition may even increase the LLM
        costs" — so decomposition must be chosen per query. This greedy
        algorithm covers each original question either by its own direct
        translation or by its sub-questions, whichever adds fewer *marginal*
        prompt tokens given the sub-questions already selected by other
        queries (shared sub-questions are free after their first use).

        Returns ``(sql_per_question, {"decomposed": n, "direct": m})``.
        """
        from repro.llm.tokenizer import count_tokens

        decompositions = [decompose_nl_question(q) for q in questions]
        prefix_tokens = count_tokens(self._prefix())

        def question_tokens(text: str) -> int:
            # Every new LLM call pays the shared prefix (schema + examples)
            # plus its own question line.
            return prefix_tokens + count_tokens(f"Question: {text}")

        # Amortized covering: count how often each sub-question is
        # referenced across the whole workload, then decompose a compound
        # iff its amortized share of the sub-question calls is cheaper than
        # its direct translation. Shared sub-questions split their cost
        # across every query that references them.
        reference_counts: Dict[str, int] = {}
        for decomposition in decompositions:
            if decomposition.is_compound:
                for sub in decomposition.sub_questions:
                    key = sub.lower()
                    reference_counts[key] = reference_counts.get(key, 0) + 1

        selected_subs: Dict[str, int] = {}
        plan_choice: List[bool] = []  # True = decompose
        for decomposition in decompositions:
            if not decomposition.is_compound:
                plan_choice.append(False)
                continue
            direct_cost = question_tokens(decomposition.question)
            amortized = sum(
                question_tokens(sub) / reference_counts[sub.lower()]
                for sub in decomposition.sub_questions
            )
            if amortized <= direct_cost:
                plan_choice.append(True)
                for sub in decomposition.sub_questions:
                    selected_subs[sub.lower()] = selected_subs.get(sub.lower(), 0) + 1
            else:
                plan_choice.append(False)

        # Execute: unique selected sub-questions once, direct questions once.
        sub_sql: Dict[str, str] = {}
        for sub in selected_subs:
            # Recover original casing from any decomposition that carries it.
            original = next(
                s
                for d in decompositions
                for s in d.sub_questions
                if s.lower() == sub
            )
            sub_sql[sub] = self.client.complete(self._full_prompt(original), model=self.model).text

        out: List[str] = []
        stats = {"decomposed": 0, "direct": 0}
        for decomposition, decomposed in zip(decompositions, plan_choice):
            if decomposed and decomposition.is_compound:
                stats["decomposed"] += 1
                sqls = [sub_sql[s.lower()] for s in decomposition.sub_questions]
                out.append(recompose_sql(sqls, decomposition.recompose_op))
            else:
                stats["direct"] += 1
                out.append(
                    self.client.complete(
                        self._full_prompt(decomposition.question), model=self.model
                    ).text
                )
        return out, stats

    @staticmethod
    def _recompose_all(plan: CombinedPlan, sub_sql: Dict[str, str]) -> List[str]:
        out = []
        for decomposition in plan.decompositions:
            sqls = [sub_sql[s.lower()] for s in decomposition.sub_questions]
            if decomposition.is_compound:
                out.append(recompose_sql(sqls, decomposition.recompose_op))
            else:
                out.append(sqls[0])
        return out


# --------------------------------------------------------------------------
# Multi-hop QA decomposition
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class QAChainStep:
    """One step in a QA chain; ``{answer}`` is filled from the prior step."""

    template: str

    def render(self, previous_answer: Optional[str]) -> str:
        if "{answer}" in self.template:
            if previous_answer is None:
                raise ValueError("step requires a previous answer")
            return self.template.format(answer=previous_answer)
        return self.template


@dataclass(frozen=True)
class QAPlan:
    """Decomposition plan for a multi-hop question."""

    question: str
    kind: str  # 'bridge' | 'comparison' | 'atomic'
    steps: Tuple[QAChainStep, ...] = field(default_factory=tuple)
    operands: Tuple[str, ...] = field(default_factory=tuple)  # comparisons
    # 'chain' = answer of the last step; 'min_value' = operand with the
    # smaller numeric sub-answer.
    recompose: str = "chain"


_BRIDGE_RULES: List[Tuple[re.Pattern, Callable[[str], Tuple[str, str]]]] = [
    (
        re.compile(r"(?i)^who directed the film that starred (.+?)\?$"),
        lambda e: (f"Which film starred {e}?", "Who directed {answer}?"),
    ),
    # Paraphrased forms decompose into the same canonical sub-questions —
    # which is exactly why sub-query caching raises the hit rate (III-C).
    (
        re.compile(r"(?i)^the film starring (.+?) was directed by whom\?$"),
        lambda e: (f"Which film starred {e}?", "Who directed {answer}?"),
    ),
    (
        re.compile(r"(?i)^the city where (.+?) was born is located in which country\?$"),
        lambda e: (f"In which city was {e} born?", "In which country is {answer} located?"),
    ),
    (
        re.compile(r"(?i)^the team that (.+?) plays for is based in which city\?$"),
        lambda e: (f"Which team does {e} play for?", "In which city is {answer} based?"),
    ),
    (
        re.compile(r"(?i)^which sport is played by the team that (.+?) plays for\?$"),
        lambda e: (f"Which team does {e} play for?", "What sport does {answer} play?"),
    ),
    (
        re.compile(r"(?i)^in which country is the city where (.+?) was born(?: located)?\?$"),
        lambda e: (f"In which city was {e} born?", "In which country is {answer} located?"),
    ),
    (
        re.compile(r"(?i)^in which city is the team that (.+?) plays for based\?$"),
        lambda e: (f"Which team does {e} play for?", "In which city is {answer} based?"),
    ),
    (
        re.compile(r"(?i)^what sport does the team that (.+?) plays for play\?$"),
        lambda e: (f"Which team does {e} play for?", "What sport does {answer} play?"),
    ),
]

_COMPARISON_RULES: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"(?i)^who was born earlier, (.+?) or (.+?)\?$"), "In which year was {0} born?"),
    (
        re.compile(r"(?i)^which film was released first, (.+?) or (.+?)\?$"),
        "In which year was {0} released?",
    ),
    (re.compile(r"(?i)^between (.+?) and (.+?), who was born earlier\?$"), "In which year was {0} born?"),
    (
        re.compile(r"(?i)^between (.+?) and (.+?), which film was released first\?$"),
        "In which year was {0} released?",
    ),
]


def decompose_qa_question(question: str) -> QAPlan:
    """Build a decomposition plan for a HotpotQA-style question."""
    normalized = question.strip()
    if not normalized.endswith("?"):
        normalized += "?"
    for pattern, make in _BRIDGE_RULES:
        m = pattern.match(normalized)
        if m:
            first, second = make(m.group(1).strip())
            return QAPlan(
                question=question,
                kind="bridge",
                steps=(QAChainStep(first), QAChainStep(second)),
                recompose="chain",
            )
    for pattern, template in _COMPARISON_RULES:
        m = pattern.match(normalized)
        if m:
            a, b = m.group(1).strip(), m.group(2).strip()
            return QAPlan(
                question=question,
                kind="comparison",
                steps=(QAChainStep(template.format(a)), QAChainStep(template.format(b))),
                operands=(a, b),
                recompose="min_value",
            )
    return QAPlan(question=question, kind="atomic", steps=(QAChainStep(normalized),))


def answer_via_decomposition(
    client: CompletionProvider,
    question: str,
    model: Optional[str] = None,
    sub_answer_fn: Optional[Callable[[str], str]] = None,
) -> str:
    """Answer a question by executing its decomposition plan.

    ``sub_answer_fn`` lets callers intercept sub-question answering (the
    sub-query cache wraps it); default goes straight to the client.
    """
    from repro.core.prompts.templates import qa_prompt

    plan = decompose_qa_question(question)

    def answer_sub(sub_question: str) -> str:
        if sub_answer_fn is not None:
            return sub_answer_fn(sub_question)
        return client.complete(qa_prompt(sub_question), model=model).text

    if plan.recompose == "chain":
        previous: Optional[str] = None
        for step in plan.steps:
            previous = answer_sub(step.render(previous))
        return previous or ""
    # min_value comparison
    answers = [answer_sub(step.render(None)) for step in plan.steps]
    try:
        values = [float(a) for a in answers]
    except ValueError:
        return answers[0]
    return plan.operands[0] if values[0] <= values[1] else plan.operands[1]
