"""Secure inference deployment simulation (Section III-D, first challenge).

"Users access the LLMs via API requests with specific input data ... the
doctors need to send the whole table of the patient's health data to LLMs,
which is often not acceptable." The paper weighs three deployments:

* **plaintext** — cloud API sees the data (no overhead, no protection);
* **TEE** (Intel SGX-style enclave) — moderate compute overhead, provider
  blinded, but vulnerable to side channels (refs [81, 82]);
* **crypto** (HE/MPC-style) — provider blinded and side-channel free, but
  "huge communication and computation overhead".

:class:`SecureLLMClient` wraps an :class:`~repro.llm.client.LLMClient` and
applies each deployment's published overhead profile to latency and
bytes-on-the-wire, plus a leakage model, so the trade-off the paper
describes is measurable. Overhead constants follow the rough magnitudes in
the cited literature (Occlumency reports ~1.2–2× for enclaves; Delphi-class
cryptographic inference is 100–1000× slower with large ciphertext blowup).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.llm.client import Completion
from repro.llm.provider import CompletionProvider, make_client


class Deployment(enum.Enum):
    PLAINTEXT = "plaintext"
    TEE = "tee"
    CRYPTO = "crypto"


@dataclass(frozen=True)
class DeploymentProfile:
    """Overhead and exposure profile of one deployment option."""

    latency_multiplier: float
    bytes_per_token: float  # wire size per token (ciphertext expansion)
    provider_sees_plaintext: bool
    side_channel_exposure: float  # [0, 1] relative leak surface


PROFILES: Dict[Deployment, DeploymentProfile] = {
    Deployment.PLAINTEXT: DeploymentProfile(
        latency_multiplier=1.0,
        bytes_per_token=4.0,
        provider_sees_plaintext=True,
        side_channel_exposure=0.0,  # nothing left to leak — it's plaintext
    ),
    Deployment.TEE: DeploymentProfile(
        latency_multiplier=1.6,
        bytes_per_token=4.5,  # sealed channel framing
        provider_sees_plaintext=False,
        side_channel_exposure=0.3,  # controlled-channel / timing leaks
    ),
    Deployment.CRYPTO: DeploymentProfile(
        latency_multiplier=250.0,
        bytes_per_token=2048.0,  # ciphertext blowup
        provider_sees_plaintext=False,
        side_channel_exposure=0.0,
    ),
}


@dataclass(frozen=True)
class SecureCompletion:
    """A completion plus the security/overhead accounting of its request."""

    completion: Completion
    deployment: Deployment
    latency_ms: float
    bytes_on_wire: float
    provider_saw_plaintext: bool
    side_channel_exposure: float


@dataclass
class ExposureLedger:
    """Aggregate exposure accounting across a session."""

    requests: int = 0
    plaintext_tokens_disclosed: int = 0
    side_channel_weighted_tokens: float = 0.0
    total_latency_ms: float = 0.0
    total_bytes: float = 0.0


class SecureLLMClient:
    """LLM access under a chosen secure-deployment profile."""

    def __init__(self, client: CompletionProvider, deployment: Deployment = Deployment.TEE) -> None:
        self.client = client
        self.deployment = deployment
        self.profile = PROFILES[deployment]
        self.ledger = ExposureLedger()

    def complete(self, prompt: str, model: Optional[str] = None) -> SecureCompletion:
        """Run one request under this deployment's overhead profile."""
        completion = self.client.complete(prompt, model=model)
        total_tokens = completion.usage.total_tokens
        latency = completion.latency_ms * self.profile.latency_multiplier
        wire = total_tokens * self.profile.bytes_per_token
        self.ledger.requests += 1
        self.ledger.total_latency_ms += latency
        self.ledger.total_bytes += wire
        if self.profile.provider_sees_plaintext:
            self.ledger.plaintext_tokens_disclosed += completion.usage.prompt_tokens
        self.ledger.side_channel_weighted_tokens += (
            self.profile.side_channel_exposure * completion.usage.prompt_tokens
        )
        return SecureCompletion(
            completion=completion,
            deployment=self.deployment,
            latency_ms=latency,
            bytes_on_wire=wire,
            provider_saw_plaintext=self.profile.provider_sees_plaintext,
            side_channel_exposure=self.profile.side_channel_exposure,
        )


def compare_deployments(prompt: str, model: str = "gpt-4") -> Dict[str, Dict[str, float]]:
    """One-call comparison used by the ablation bench: the same request
    under each deployment, with identical answers (security changes cost
    and exposure, never the result)."""
    out: Dict[str, Dict[str, float]] = {}
    for deployment in Deployment:
        secure = SecureLLMClient(make_client(model=model), deployment=deployment)
        result = secure.complete(prompt)
        out[deployment.value] = {
            "latency_ms": round(result.latency_ms, 2),
            "bytes_on_wire": result.bytes_on_wire,
            "plaintext_disclosed": float(result.provider_saw_plaintext),
            "side_channel_exposure": result.side_channel_exposure,
        }
    return out
