"""LLM security & privacy (Section III-D).

* :mod:`repro.core.privacy.dp` — differential privacy: Laplace/Gaussian
  mechanisms, a privacy accountant, and DP-SGD logistic regression (the
  "integrate DP into the training process" direction).
* :mod:`repro.core.privacy.federated` — FedAvg fine-tuning across
  heterogeneous clients (the data-collaboration direction).
* :mod:`repro.core.privacy.attacks` — membership-inference attack and its
  evaluation against DP-trained models.
* :mod:`repro.core.privacy.sharing` — the cross-tenant cache-sharing gate
  the serving cluster consults (group policy + epsilon-budgeted
  disclosure accounting over a :class:`PrivacyAccountant`).
"""

from repro.core.privacy.attacks import membership_inference_advantage
from repro.core.privacy.dp import (
    PrivacyAccountant,
    dp_logistic_regression,
    gaussian_mechanism,
    laplace_mechanism,
)
from repro.core.privacy.federated import FederatedClient, FederatedTrainer, LogisticModel
from repro.core.privacy.sharing import CacheSharingGate, isolation_gate
from repro.core.privacy.secure import (
    Deployment,
    SecureLLMClient,
    compare_deployments,
)

__all__ = [
    "CacheSharingGate",
    "Deployment",
    "FederatedClient",
    "FederatedTrainer",
    "LogisticModel",
    "PrivacyAccountant",
    "SecureLLMClient",
    "compare_deployments",
    "dp_logistic_regression",
    "gaussian_mechanism",
    "isolation_gate",
    "laplace_mechanism",
    "membership_inference_advantage",
]
