"""Membership-inference attack and DP defense evaluation (Section III-D).

Implements the Yeom et al. loss-threshold attack: an example is predicted
to be a training-set *member* when the model's loss on it is below a
threshold chosen on a calibration split. Attack strength is reported as the
*membership advantage* ``TPR − FPR``; DP-SGD training should push it toward
zero at some utility cost — the trade-off the ablation bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.privacy.dp import logistic_loss


@dataclass(frozen=True)
class AttackReport:
    """Outcome of one membership-inference evaluation."""

    advantage: float  # TPR - FPR in [-1, 1]
    true_positive_rate: float
    false_positive_rate: float
    threshold: float


def membership_inference_advantage(
    weights: np.ndarray,
    member_features: np.ndarray,
    member_labels: np.ndarray,
    non_member_features: np.ndarray,
    non_member_labels: np.ndarray,
) -> AttackReport:
    """Run the loss-threshold attack against a trained model.

    The threshold is set to the value maximizing advantage over the pooled
    loss distribution — the strongest threshold attack, i.e. a conservative
    (pessimistic for the defender) estimate.
    """
    member_losses = logistic_loss(weights, member_features, member_labels)
    non_member_losses = logistic_loss(weights, non_member_features, non_member_labels)
    candidates = np.unique(np.concatenate([member_losses, non_member_losses]))
    best = AttackReport(advantage=-1.0, true_positive_rate=0.0, false_positive_rate=0.0, threshold=0.0)
    for threshold in candidates:
        tpr = float(np.mean(member_losses <= threshold))
        fpr = float(np.mean(non_member_losses <= threshold))
        advantage = tpr - fpr
        if advantage > best.advantage:
            best = AttackReport(
                advantage=advantage,
                true_positive_rate=tpr,
                false_positive_rate=fpr,
                threshold=float(threshold),
            )
    return best
