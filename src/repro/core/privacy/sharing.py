"""Controlled cross-tenant cache sharing (Section III-D meets III-C).

The Fig 7 result shows sub-query answers being shared across *queries*;
grown to production shape, the valuable (and dangerous) version is sharing
cached answers across *tenants*: one tenant's cached completion answering
another tenant's probe saves a full LLM call, but discloses that the owner
asked (and what the model answered). This module is the gate that makes
that disclosure an explicit, budgeted decision instead of an accident:

* **Fail closed** — tenants share nothing unless they are placed in the
  same sharing group. The serving cluster consults :meth:`allows` before
  every cross-tenant probe; with no gate configured it never probes at all.
* **Privacy accounting** — every served cross-tenant hit is a disclosure
  event recorded in a :class:`~repro.core.privacy.dp.PrivacyAccountant`
  as an ``epsilon_per_share`` spend (treating a served cache line like one
  invocation of a releasing mechanism, sequential composition as in DP).
  When the accumulated epsilon reaches ``epsilon_budget`` the gate closes
  again — sharing degrades to isolation rather than unbounded disclosure.
* **Auditability** — the gate keeps a (consumer, owner) share ledger, so a
  report can say exactly who consumed whose cache lines and how often.

The gate decides *policy* only; mechanics (which shard, which partition,
read-only probing) live in :mod:`repro.serving.cluster`, which guarantees
that cross-tenant probes never mutate the owner's cache state.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.privacy.dp import PrivacyAccountant


class CacheSharingGate:
    """Policy gate for cross-tenant semantic-cache reads.

    ``groups`` is an iterable of tenant groups (any iterable of tenant
    names); tenants within one group may serve each other's cached
    answers, tenants never named share nothing. ``epsilon_per_share``
    is the privacy spend recorded per served cross-tenant hit and
    ``epsilon_budget`` the total epsilon the gate may spend before it
    closes (``None`` = unmetered sharing within groups).
    """

    def __init__(
        self,
        groups: Iterable[Iterable[str]] = (),
        *,
        epsilon_per_share: float = 0.1,
        epsilon_budget: Optional[float] = None,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> None:
        if epsilon_per_share < 0:
            raise ValueError("epsilon_per_share must be non-negative")
        if epsilon_budget is not None and epsilon_budget < 0:
            raise ValueError("epsilon_budget must be non-negative")
        self.epsilon_per_share = epsilon_per_share
        self.epsilon_budget = epsilon_budget
        self.accountant = accountant if accountant is not None else PrivacyAccountant()
        self._group_of: Dict[str, int] = {}
        self._groups: List[Tuple[str, ...]] = []
        for group in groups:
            members = tuple(dict.fromkeys(group))
            if len(members) < 2:
                raise ValueError("a sharing group needs at least two tenants")
            for member in members:
                if member in self._group_of:
                    raise ValueError(f"tenant {member!r} appears in two sharing groups")
                self._group_of[member] = len(self._groups)
            self._groups.append(members)
        self.shares: Dict[Tuple[str, str], int] = {}  # (consumer, owner) -> count
        self.denied_budget = 0  # probes refused because epsilon ran out
        self._lock = threading.Lock()

    # ------------------------------------------------------------ policy

    def peers(self, tenant: str) -> Tuple[str, ...]:
        """The other tenants whose caches ``tenant`` may read (group
        order, which is deterministic — the cluster probes peers in this
        order so merged results don't depend on dict iteration)."""
        index = self._group_of.get(tenant)
        if index is None:
            return ()
        return tuple(member for member in self._groups[index] if member != tenant)

    def epsilon_spent(self) -> float:
        """Total epsilon recorded so far (basic sequential composition)."""
        epsilon, _delta = self.accountant.basic_composition()
        return epsilon

    def budget_left(self) -> bool:
        if self.epsilon_budget is None:
            return True
        return (
            self.epsilon_spent() + self.epsilon_per_share <= self.epsilon_budget + 1e-12
        )

    def allows(self, consumer: str, owner: str) -> bool:
        """May ``consumer`` be served a cache line owned by ``owner``?

        True only when both tenants sit in the same sharing group *and*
        serving one more share still fits the epsilon budget. Never true
        for a tenant probing itself — that's not sharing."""
        if consumer == owner:
            return False
        index = self._group_of.get(consumer)
        if index is None or self._group_of.get(owner) != index:
            return False
        with self._lock:
            if not self.budget_left():
                self.denied_budget += 1
                return False
        return True

    # ------------------------------------------------------------ ledger

    def record_share(self, consumer: str, owner: str) -> None:
        """Account one served cross-tenant hit: epsilon spend + ledger."""
        with self._lock:
            self.accountant.record(self.epsilon_per_share)
            key = (consumer, owner)
            self.shares[key] = self.shares.get(key, 0) + 1

    def total_shares(self) -> int:
        with self._lock:
            return sum(self.shares.values())

    def ledger(self) -> Dict[str, Dict[str, int]]:
        """``{consumer: {owner: count}}`` — who consumed whose cache."""
        out: Dict[str, Dict[str, int]] = {}
        with self._lock:
            for (consumer, owner), count in sorted(self.shares.items()):
                out.setdefault(consumer, {})[owner] = count
        return out

    def describe(self) -> str:
        groups = ", ".join("{" + ", ".join(g) + "}" for g in self._groups) or "none"
        budget = (
            "unmetered"
            if self.epsilon_budget is None
            else f"eps {self.epsilon_spent():.3f}/{self.epsilon_budget:.3f}"
        )
        return f"sharing groups: {groups} ({budget}, {self.total_shares()} shares)"


def isolation_gate() -> Optional["CacheSharingGate"]:
    """The default policy: no gate at all — nothing is ever shared."""
    return None


__all__ = ["CacheSharingGate", "isolation_gate"]
