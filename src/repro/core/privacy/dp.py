"""Differential privacy primitives and DP-SGD training.

The paper's Section III-D calls for "new algorithms that inject minimal
noise into the training process while maximizing the model utility". This
module provides the standard toolbox those algorithms build on:

* output perturbation: :func:`laplace_mechanism`, :func:`gaussian_mechanism`;
* :class:`PrivacyAccountant` — naive and advanced sequential composition;
* :func:`dp_logistic_regression` — DP-SGD (per-example gradient clipping +
  Gaussian noise, Abadi et al.) for the small task heads our fine-tuning
  simulation uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro._util import rng_from


def laplace_mechanism(value: float, sensitivity: float, epsilon: float, rng=None) -> float:
    """Add Laplace(sensitivity/epsilon) noise — pure epsilon-DP."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    rng = rng_from(rng if rng is not None else 0)
    scale = sensitivity / epsilon
    return float(value + rng.laplace(0.0, scale))


def gaussian_mechanism(
    value: float, sensitivity: float, epsilon: float, delta: float = 1e-5, rng=None
) -> float:
    """Add calibrated Gaussian noise — (epsilon, delta)-DP."""
    if epsilon <= 0 or not (0 < delta < 1):
        raise ValueError("need epsilon > 0 and 0 < delta < 1")
    rng = rng_from(rng if rng is not None else 0)
    sigma = sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon
    return float(value + rng.normal(0.0, sigma))


@dataclass
class PrivacyAccountant:
    """Tracks the privacy budget spent across mechanism invocations."""

    spent: List[Tuple[float, float]] = field(default_factory=list)  # (eps, delta)

    def record(self, epsilon: float, delta: float = 0.0) -> None:
        """Log one mechanism invocation's (epsilon, delta) spend."""
        if epsilon < 0 or delta < 0:
            raise ValueError("epsilon and delta must be non-negative")
        self.spent.append((epsilon, delta))

    def basic_composition(self) -> Tuple[float, float]:
        """Sum of epsilons and deltas (always valid)."""
        return (sum(e for e, _d in self.spent), sum(d for _e, d in self.spent))

    def advanced_composition(self, delta_prime: float = 1e-6) -> Tuple[float, float]:
        """Advanced composition (Dwork/Rothblum/Vadhan) for k-fold use of
        the same epsilon; falls back to basic when epsilons differ."""
        if not self.spent:
            return (0.0, delta_prime)
        epsilons = {round(e, 12) for e, _d in self.spent}
        if len(epsilons) != 1:
            eps, delta = self.basic_composition()
            return (eps, delta + delta_prime)
        epsilon = self.spent[0][0]
        k = len(self.spent)
        total_delta = sum(d for _e, d in self.spent) + delta_prime
        eps_advanced = (
            math.sqrt(2.0 * k * math.log(1.0 / delta_prime)) * epsilon
            + k * epsilon * (math.exp(epsilon) - 1.0)
        )
        return (min(eps_advanced, k * epsilon), total_delta)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


def dp_logistic_regression(
    features: np.ndarray,
    labels: np.ndarray,
    epsilon: Optional[float] = None,
    delta: float = 1e-5,
    clip_norm: float = 1.0,
    epochs: int = 40,
    learning_rate: float = 0.4,
    seed: int = 0,
    initial_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Train logistic regression with DP-SGD; returns the weight vector.

    ``epsilon=None`` trains without noise (the non-private baseline). Noise
    scale uses the Gaussian mechanism calibrated per epoch with the budget
    split evenly across epochs (simple, conservative accounting).
    ``initial_weights`` warm-starts training (federated local updates).
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] == 0:
        raise ValueError("features must be (n, d) aligned with labels (n,)")
    n, d = x.shape
    rng = rng_from(seed)
    if initial_weights is not None:
        weights = np.asarray(initial_weights, dtype=np.float64).copy()
        if weights.shape != (d,):
            raise ValueError(f"initial_weights must have shape ({d},)")
    else:
        weights = np.zeros(d)
    sigma = 0.0
    if epsilon is not None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        # Advanced-composition calibration: total sigma scales with
        # sqrt(epochs) rather than epochs (see PrivacyAccountant). This is
        # the standard accounting step between naive composition and the
        # moments accountant.
        sigma = clip_norm * math.sqrt(2.0 * math.log(1.25 / delta)) * math.sqrt(epochs) / epsilon
    for _epoch in range(epochs):
        predictions = _sigmoid(x @ weights)
        residuals = predictions - y  # (n,)
        per_example = residuals[:, None] * x  # (n, d) gradients
        if epsilon is not None:
            norms = np.linalg.norm(per_example, axis=1, keepdims=True)
            scale = np.minimum(1.0, clip_norm / np.maximum(norms, 1e-12))
            per_example = per_example * scale
            noise = rng.normal(0.0, sigma, size=d)
            gradient = (per_example.sum(axis=0) + noise) / n
        else:
            gradient = per_example.mean(axis=0)
        weights -= learning_rate * gradient
    return weights


def logistic_predict(weights: np.ndarray, features: np.ndarray) -> np.ndarray:
    """Predicted probabilities for a weight vector from the trainer above."""
    return _sigmoid(np.asarray(features, dtype=np.float64) @ weights)


def logistic_loss(weights: np.ndarray, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-example cross-entropy loss (the membership-inference signal)."""
    p = logistic_predict(weights, features)
    y = np.asarray(labels, dtype=np.float64)
    eps = 1e-12
    return -(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
