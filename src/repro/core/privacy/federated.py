"""Federated fine-tuning simulation (Section III-D, second challenge).

The scenario: several hospitals/users each hold a private slice of labeled
data (here: entity-match pairs, the data-transformation head the paper's
doctors would fine-tune) and collaboratively train a shared task head with
FedAvg, never pooling raw data. Clients are heterogeneous in data size and
label mix — the paper's point about the complicated FL design space — and
each client can optionally train its local epochs with DP-SGD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import jaccard, levenshtein_ratio, normalize_text, words
from repro.core.privacy.dp import dp_logistic_regression, logistic_predict


def er_pair_features(a: str, b: str) -> np.ndarray:
    """Feature vector for an entity pair (the fine-tuned head's input)."""
    na, nb = normalize_text(a), normalize_text(b)
    ta, tb = words(na), words(nb)
    digits_a = {w for w in ta if w.isdigit()}
    digits_b = {w for w in tb if w.isdigit()}
    return np.array(
        [
            1.0,
            jaccard(ta, tb),
            levenshtein_ratio(na, nb),
            jaccard(digits_a, digits_b) if (digits_a or digits_b) else 0.5,
            abs(len(ta) - len(tb)) / max(len(ta) + len(tb), 1),
        ]
    )


@dataclass
class LogisticModel:
    """A weight vector with predict helpers."""

    weights: np.ndarray

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return logistic_predict(self.weights, features)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return self.predict_proba(features) >= threshold

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(features)
        return float(np.mean(predictions == np.asarray(labels, dtype=bool)))


@dataclass
class FederatedClient:
    """One participant with a private data slice."""

    client_id: str
    features: np.ndarray
    labels: np.ndarray
    epsilon: Optional[float] = None  # per-round local DP budget
    local_epochs: int = 5

    @property
    def n_examples(self) -> int:
        return int(self.features.shape[0])

    def local_update(self, global_weights: np.ndarray, seed: int) -> np.ndarray:
        """Standard FedAvg local step: continue DP-SGD training from the
        broadcast global weights for ``local_epochs`` on the private slice."""
        return dp_logistic_regression(
            self.features,
            self.labels,
            epsilon=self.epsilon,
            epochs=self.local_epochs,
            seed=seed,
            initial_weights=global_weights,
        )


class FederatedTrainer:
    """FedAvg coordinator."""

    def __init__(self, clients: Sequence[FederatedClient], dim: int, seed: int = 0) -> None:
        if not clients:
            raise ValueError("need at least one client")
        self.clients = list(clients)
        self.global_weights = np.zeros(dim)
        self.seed = seed
        self.round = 0
        self.history: List[float] = []

    def run_round(self) -> np.ndarray:
        """One FedAvg round: broadcast, local update, weighted average."""
        self.round += 1
        updates = []
        sizes = []
        for i, client in enumerate(self.clients):
            update = client.local_update(self.global_weights, seed=self.seed * 1000 + self.round * 10 + i)
            updates.append(update)
            sizes.append(client.n_examples)
        total = sum(sizes)
        self.global_weights = sum(
            (s / total) * u for s, u in zip(sizes, updates)
        )
        return self.global_weights

    def train(self, rounds: int, eval_set: Optional[Tuple[np.ndarray, np.ndarray]] = None) -> LogisticModel:
        """Run ``rounds`` FedAvg rounds; tracks eval accuracy per round."""
        for _r in range(rounds):
            self.run_round()
            if eval_set is not None:
                model = LogisticModel(self.global_weights)
                self.history.append(model.accuracy(*eval_set))
        return LogisticModel(self.global_weights)


def split_across_clients(
    features: np.ndarray,
    labels: np.ndarray,
    n_clients: int,
    seed: int = 0,
    heterogeneous: bool = True,
) -> List[FederatedClient]:
    """Partition a dataset into client slices.

    Heterogeneous mode gives clients unequal sizes (Zipf-ish) and skews the
    label mix per client — the paper's heterogeneity challenge.
    """
    rng = np.random.default_rng(seed)
    n = features.shape[0]
    # Heterogeneous: label-skewed slices (clients see different label mixes)
    # but never single-label — pure label sorting makes local training
    # degenerate, which is not the regime the paper discusses.
    label_weight = 0.6 if heterogeneous else 0.0
    order = np.argsort(labels * label_weight + rng.random(n))
    if heterogeneous:
        weights = np.array([1.0 / (i + 1) for i in range(n_clients)])
    else:
        weights = np.ones(n_clients)
    weights = weights / weights.sum()
    counts = np.maximum(1, (weights * n).astype(int))
    # Fix rounding drift.
    while counts.sum() > n:
        counts[np.argmax(counts)] -= 1
    while counts.sum() < n:
        counts[np.argmin(counts)] += 1
    clients = []
    start = 0
    for i, count in enumerate(counts):
        idx = order[start : start + count]
        clients.append(
            FederatedClient(
                client_id=f"client-{i}",
                features=features[idx],
                labels=labels[idx],
            )
        )
        start += count
    return clients
