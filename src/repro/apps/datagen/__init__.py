"""LLM for data generation (Section II-A)."""

from repro.apps.datagen.sqlgen import GeneratedSQL, SQLGenerator, equivalence_check, logic_bug_test
from repro.apps.datagen.traindata import (
    AnnotationResult,
    ExecutionTimePredictor,
    MissingLabelAnnotator,
)

__all__ = [
    "AnnotationResult",
    "ExecutionTimePredictor",
    "GeneratedSQL",
    "MissingLabelAnnotator",
    "SQLGenerator",
    "equivalence_check",
    "logic_bug_test",
]
