"""SQL generation with LLMs (Section II-A1, Fig 2).

The flow of Fig 2: database schema + constraints go into the LLM, which
emits a batch of SQL queries (simple / multi-join / sub-query). Every query
is then validated against the live database (the Section III-E loop), and
failed ones are regenerated. Also includes the DBMS-testing application the
paper motivates with ref [20]: semantically-equivalent query pairs whose
result mismatch signals a logic bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.prompts.templates import sqlgen_prompt
from repro.core.validation import SQLValidator, ValidationReport
from repro.errors import SQLError
from repro.serving import CompletionProvider
from repro.sqldb import Database


@dataclass(frozen=True)
class GeneratedSQL:
    """One generated query with its validation outcome."""

    sql: str
    report: ValidationReport

    @property
    def valid(self) -> bool:
        return self.report.valid


class SQLGenerator:
    """Generates constraint-satisfying SQL over a database's schema."""

    DEFAULT_KINDS = ("simple", "join", "subquery", "aggregate")

    def __init__(self, client: CompletionProvider, db: Database, model: Optional[str] = None) -> None:
        self.client = client
        self.db = db
        self.model = model
        self.validator = SQLValidator(db)

    def generate(
        self, count: int, kinds: Sequence[str] = DEFAULT_KINDS, attempt: int = 0
    ) -> List[GeneratedSQL]:
        """One LLM round trip producing ``count`` validated queries."""
        prompt = sqlgen_prompt(self.db.schema_text(), count, kinds)
        if attempt:
            # A retry marker changes the (deterministic) completion — the
            # simulator's analogue of re-sampling at temperature > 0.
            prompt += f"\nAttempt: {attempt}"
        completion = self.client.complete(prompt, model=self.model)
        queries = [q.strip() for q in completion.text.split(";") if q.strip()]
        return [GeneratedSQL(sql=q, report=self.validator.validate(q)) for q in queries]

    def generate_validated(
        self, count: int, kinds: Sequence[str] = DEFAULT_KINDS, max_attempts: int = 4
    ) -> Tuple[List[GeneratedSQL], int]:
        """Regenerate until ``count`` valid queries accumulate (or attempts
        run out). Returns (valid queries, total queries generated)."""
        valid: List[GeneratedSQL] = []
        total = 0
        seen = set()
        for attempt in range(max_attempts):
            for generated in self.generate(count, kinds, attempt=attempt):
                total += 1
                if generated.valid and generated.sql not in seen:
                    seen.add(generated.sql)
                    valid.append(generated)
            if len(valid) >= count:
                break
        return valid[:count], total


def equivalence_check(db: Database, sql_a: str, sql_b: str) -> Optional[bool]:
    """Do two queries return the same result multiset? None = either failed."""
    try:
        rows_a = db.execute(sql_a).rows
        rows_b = db.execute(sql_b).rows
    except SQLError:
        return None
    return sorted(map(repr, rows_a)) == sorted(map(repr, rows_b))


@dataclass(frozen=True)
class LogicBugReport:
    """Outcome of a logic-bug hunt over equivalent query pairs."""

    pairs_tested: int
    pairs_failed_to_run: int
    mismatches: Tuple[Tuple[str, str], ...]

    @property
    def bug_found(self) -> bool:
        return bool(self.mismatches)


def logic_bug_test(
    client: CompletionProvider, db: Database, n_pairs: int = 5, model: Optional[str] = None
) -> LogicBugReport:
    """Generate semantically-equivalent pairs and compare their results.

    On a correct engine every runnable pair must match; a mismatch is
    either an engine logic bug or an LLM generation error — the validator
    distinguishes them by re-deriving equivalence symbolically is out of
    scope, so mismatches are surfaced for human triage (Section III-E)."""
    prompt = sqlgen_prompt(db.schema_text(), n_pairs, ["equivalent_pair"])
    completion = client.complete(prompt, model=model)
    statements = [q.strip() for q in completion.text.split(";") if q.strip()]
    mismatches: List[Tuple[str, str]] = []
    failed = 0
    tested = 0
    for sql_a, sql_b in zip(statements[0::2], statements[1::2]):
        tested += 1
        verdict = equivalence_check(db, sql_a, sql_b)
        if verdict is None:
            failed += 1
        elif not verdict:
            mismatches.append((sql_a, sql_b))
    return LogicBugReport(
        pairs_tested=tested, pairs_failed_to_run=failed, mismatches=tuple(mismatches)
    )
