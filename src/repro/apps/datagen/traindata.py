"""Training data generation (Section II-A2, Fig 3).

* :class:`ExecutionTimePredictor` — the Fig 3 loop: labeled
  ⟨query features, execution_time⟩ pairs go into the prompt; the LLM
  predicts the time of an unseen query. Example selection picks the
  nearest labeled queries in feature space (more relevant examples →
  measurably better predictions, since the engine's k-NN really uses them).
* :class:`MissingLabelAnnotator` — missing-field annotation over serialized
  rows with few-shot ICL, evaluated against the held-back gold labels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.prompts.templates import exec_time_prompt, label_infer_prompt
from repro.datasets.tabular import TabularDataset
from repro.datasets.workloads import QueryTimingExample
from repro.serving import CompletionProvider


class ExecutionTimePredictor:
    """Few-shot execution-time prediction through the LLM."""

    def __init__(
        self,
        client: CompletionProvider,
        example_pool: Sequence[QueryTimingExample],
        n_examples: int = 8,
        model: Optional[str] = None,
    ) -> None:
        if not example_pool:
            raise ValueError("example pool must not be empty")
        self.client = client
        self.example_pool = list(example_pool)
        self.n_examples = n_examples
        self.model = model

    def _nearest_examples(self, features: Dict[str, float]) -> List[QueryTimingExample]:
        keys = sorted({k for ex in self.example_pool for k in ex.features} | set(features))

        def distance(example: QueryTimingExample) -> float:
            return math.sqrt(
                sum((example.features.get(k, 0.0) - features.get(k, 0.0)) ** 2 for k in keys)
            )

        ranked = sorted(self.example_pool, key=lambda ex: (distance(ex), ex.sql))
        return ranked[: self.n_examples]

    def predict(self, features: Dict[str, float]) -> float:
        """Predict execution time (ms) for a query's feature vector."""
        examples = self._nearest_examples(features)
        prompt = exec_time_prompt(
            [(ex.feature_line(), ex.execution_time_ms) for ex in examples],
            ", ".join(f"{k}={v:g}" for k, v in sorted(features.items())),
        )
        completion = self.client.complete(prompt, model=self.model)
        try:
            return float(completion.text)
        except ValueError:
            # Unparseable output: fall back to the pool median (and let the
            # evaluation count the damage).
            times = sorted(ex.execution_time_ms for ex in self.example_pool)
            return times[len(times) // 2]

    def evaluate(
        self, test_examples: Sequence[QueryTimingExample]
    ) -> Dict[str, float]:
        """Mean/median absolute relative error over a held-out set."""
        if not test_examples:
            raise ValueError("need at least one test example")
        relative_errors = []
        for example in test_examples:
            predicted = self.predict(example.features)
            truth = example.execution_time_ms
            relative_errors.append(abs(predicted - truth) / max(abs(truth), 1e-9))
        relative_errors.sort()
        n = len(relative_errors)
        return {
            "mean_relative_error": sum(relative_errors) / n,
            "median_relative_error": relative_errors[n // 2],
            "n": float(n),
        }


@dataclass(frozen=True)
class AnnotationResult:
    """Predicted labels for the dataset's masked rows + accuracy."""

    predictions: Tuple[Tuple[int, str], ...]  # (row index, predicted label)
    accuracy: Optional[float]  # None when gold labels are unavailable


class MissingLabelAnnotator:
    """Fills missing labels in tabular data via few-shot row serialization."""

    def __init__(self, client: CompletionProvider, n_examples: int = 16, model: Optional[str] = None) -> None:
        self.client = client
        self.n_examples = n_examples
        self.model = model

    def annotate(self, dataset: TabularDataset) -> AnnotationResult:
        """Fill every missing label; returns predictions + accuracy."""
        labeled = dataset.labeled_rows()
        if not labeled:
            raise ValueError("dataset has no labeled rows to learn from")
        example_rows = [dataset.serialize_row(r) for r in labeled[: self.n_examples]]
        predictions: List[Tuple[int, str]] = []
        for index, row in enumerate(dataset.rows):
            if row.get(dataset.label_column) is not None:
                continue
            prompt = label_infer_prompt(
                dataset.label_column, example_rows, dataset.serialize_row(row)
            )
            completion = self.client.complete(prompt, model=self.model)
            predictions.append((index, completion.text))

        gold: Dict[int, object] = getattr(dataset, "hidden_labels", {})
        accuracy: Optional[float] = None
        if gold:
            scored = [(i, p) for i, p in predictions if i in gold]
            if scored:
                hits = sum(1 for i, p in scored if str(gold[i]) == p)
                accuracy = hits / len(scored)
        return AnnotationResult(predictions=tuple(predictions), accuracy=accuracy)
