"""Data preparation pipelines (Section II-B4).

The paper's two LLM roles:

* **search-space pruning** — "recommend candidate pipelines, significantly
  reducing the search space": a dataset profile (missing values? skew?
  outliers? scale spread?) prunes the operator set before beam search;
* **per-operation code synthesis** — each chosen operation's implementation
  is synthesized by the LLM (:data:`repro.llm.engines.codegen.SNIPPET_LIBRARY`
  shapes), exec'd into a callable, and applied.

The downstream task scoring the pipeline is a 1-nearest-neighbor classifier
with leave-some-out accuracy — small, dependency-free, and sensitive to
scaling/imputation quality, which is what makes the search non-trivial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import rng_from
from repro.core.prompts.templates import prep_code_prompt
from repro.errors import PipelineError
from repro.serving import CompletionProvider

# Operations the searcher may apply, in the snippet library's vocabulary.
NUMERIC_OPS = (
    "impute_mean",
    "standardize",
    "normalize",
    "clip_outliers",
    "log_transform",
)


@dataclass
class PipelineStep:
    """One synthesized operation: name + compiled callable + source code."""

    operation: str
    code: str
    fn: Callable[[List[float]], List[float]]


@dataclass
class PreparedPipeline:
    """The searched pipeline with its validation score."""

    steps: List[PipelineStep]
    score: float
    baseline_score: float

    @property
    def operations(self) -> List[str]:
        return [s.operation for s in self.steps]

    def apply(self, columns: List[List[Optional[float]]]) -> List[List[float]]:
        out = [list(c) for c in columns]
        for step in self.steps:
            out = [step.fn(column) for column in out]
        return out


def profile_dataset(columns: Sequence[Sequence[Optional[float]]]) -> Dict[str, bool]:
    """Cheap dataset profile driving the LLM-guided pruning."""
    flat = [v for column in columns for v in column if v is not None]
    has_missing = any(v is None for column in columns for v in column)
    if not flat:
        return {"has_missing": has_missing, "skewed": False, "outliers": False, "scale_spread": False}
    mean = sum(flat) / len(flat)
    std = math.sqrt(sum((v - mean) ** 2 for v in flat) / len(flat)) or 1.0
    skewed = all(v >= 0 for v in flat) and (max(flat) - mean) > 3 * (mean - min(flat) + 1e-9)
    outliers = any(abs(v - mean) > 4 * std for v in flat)
    spans = [
        (max(c_vals) - min(c_vals))
        for column in columns
        if (c_vals := [v for v in column if v is not None])
    ]
    scale_spread = bool(spans) and max(spans) > 20 * (min(spans) + 1e-9)
    return {
        "has_missing": has_missing,
        "skewed": skewed,
        "outliers": outliers,
        "scale_spread": scale_spread,
    }


def recommend_operations(profile: Dict[str, bool]) -> List[str]:
    """Profile → candidate operations (the pruned search space)."""
    from repro.llm.engines.codegen import recommend_ops_from_profile

    return recommend_ops_from_profile(profile)


def recommendation_prompt(profile: Dict[str, bool]) -> str:
    """The LLM-routed form of the recommendation (II-B4's first role)."""
    flags = ", ".join(f"{k}={'yes' if v else 'no'}" for k, v in sorted(profile.items()))
    return (
        "Recommend a data preparation pipeline for a dataset with the "
        f"following profile: {flags}"
    )


def _compile_snippet(code: str, operation: str) -> Callable[[List[float]], List[float]]:
    """Compile an LLM-emitted snippet into the operation callable."""
    namespace: Dict[str, object] = {}
    try:
        exec(code, namespace)  # noqa: S102 - snippets come from the simulated LLM
    except SyntaxError as exc:
        raise PipelineError(f"snippet for {operation!r} does not compile: {exc}") from exc
    fn = namespace.get(operation)
    if not callable(fn):
        raise PipelineError(f"snippet does not define function {operation!r}")
    return fn  # type: ignore[return-value]


def _knn_accuracy(columns: List[List[float]], labels: Sequence[int], folds: int = 4) -> float:
    """Leave-fold-out 1-NN accuracy — the downstream task score."""
    n = len(labels)
    if n < folds:
        folds = max(2, n // 2)
    matrix = np.array(columns, dtype=np.float64).T  # (n, d)
    labels_arr = np.array(labels)
    hits = 0
    for fold in range(folds):
        test_idx = np.arange(fold, n, folds)
        train_idx = np.array([i for i in range(n) if i % folds != fold])
        for i in test_idx:
            distances = np.linalg.norm(matrix[train_idx] - matrix[i], axis=1)
            nearest = train_idx[int(np.argmin(distances))]
            hits += int(labels_arr[nearest] == labels_arr[i])
    return hits / n


class PipelineSearcher:
    """LLM-guided beam search over data-prep operator sequences."""

    def __init__(
        self,
        client: CompletionProvider,
        model: Optional[str] = None,
        max_steps: int = 3,
        beam_width: int = 3,
        llm_recommendation: bool = False,
    ) -> None:
        self.client = client
        self.model = model
        self.max_steps = max_steps
        self.beam_width = beam_width
        # When set, the candidate-op pruning itself goes through the LLM
        # (the paper's "LLMs recommend candidate pipelines"); a weak model
        # may then prune wrongly, which the beam search partially absorbs.
        self.llm_recommendation = llm_recommendation
        self._snippet_cache: Dict[str, PipelineStep] = {}

    def _candidate_operations(self, profile: Dict[str, bool]) -> List[str]:
        if not self.llm_recommendation:
            return recommend_operations(profile)
        completion = self.client.complete(recommendation_prompt(profile), model=self.model)
        from repro.llm.engines.codegen import SNIPPET_LIBRARY

        ops = [op.strip() for op in completion.text.split(",")]
        valid = [op for op in ops if op in SNIPPET_LIBRARY]
        return valid or recommend_operations(profile)

    def _synthesize_step(self, operation: str) -> PipelineStep:
        """One LLM call per distinct operation (cached — the paper's 'call
        LLMs once or a few times' economy)."""
        if operation in self._snippet_cache:
            return self._snippet_cache[operation]
        completion = self.client.complete(prep_code_prompt(operation), model=self.model)
        fn = _compile_snippet(completion.text, operation)
        step = PipelineStep(operation=operation, code=completion.text, fn=fn)
        self._snippet_cache[operation] = step
        return step

    def search(
        self,
        columns: Sequence[Sequence[Optional[float]]],
        labels: Sequence[int],
    ) -> PreparedPipeline:
        """Find the operator sequence maximizing downstream accuracy."""
        if not columns or not labels:
            raise ValueError("need non-empty columns and labels")
        candidates = self._candidate_operations(profile_dataset(columns))

        def safe_apply(cols: List[List[float]], step: PipelineStep) -> Optional[List[List[float]]]:
            try:
                return [step.fn(list(column)) for column in cols]
            except (PipelineError, TypeError, ValueError, ZeroDivisionError):
                return None

        # Columns may contain missing values; the scorer needs numbers, so a
        # pre-pass imputation is forced onto every candidate path if needed.
        start_cols = [list(c) for c in columns]
        if any(v is None for column in start_cols for v in column):
            impute = self._synthesize_step("impute_mean")
            start_state: Tuple[List[PipelineStep], List[List[float]]] = (
                [impute],
                [impute.fn(list(c)) for c in start_cols],
            )
        else:
            start_state = ([], [list(map(float, c)) for c in start_cols])

        baseline_score = _knn_accuracy(start_state[1], labels)
        beam: List[Tuple[float, List[PipelineStep], List[List[float]]]] = [
            (baseline_score, start_state[0], start_state[1])
        ]
        best = beam[0]
        for _depth in range(self.max_steps):
            expansions = []
            for score, steps, cols in beam:
                applied_ops = {s.operation for s in steps}
                for operation in candidates:
                    if operation in applied_ops:
                        continue
                    step = self._synthesize_step(operation)
                    next_cols = safe_apply(cols, step)
                    if next_cols is None:
                        continue
                    next_score = _knn_accuracy(next_cols, labels)
                    expansions.append((next_score, steps + [step], next_cols))
            if not expansions:
                break
            expansions.sort(key=lambda t: (-t[0], len(t[1])))
            beam = expansions[: self.beam_width]
            if beam[0][0] > best[0]:
                best = beam[0]
        score, steps, _cols = best
        return PreparedPipeline(steps=steps, score=score, baseline_score=baseline_score)
