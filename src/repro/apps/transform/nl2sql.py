"""NL2SQL translation (Section II-B1): the DAIL-SQL-style pipeline.

Builds prompts with schema + similarity-selected few-shot examples,
translates through the LLM, and optionally validates/executes against the
database. The decomposition/combination regimes for the same workload live
in :class:`repro.core.decompose.QueryOptimizer`; this class is the
per-question application API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.prompts.selector import similarity_select
from repro.core.prompts.templates import nl2sql_prompt
from repro.core.validation import SQLValidator, ValidationReport
from repro.datasets.spider import NLExample, execution_match
from repro.serving import CompletionProvider
from repro.sqldb import Database


@dataclass(frozen=True)
class TranslationResult:
    """SQL plus validation for one translated question."""

    question: str
    sql: str
    report: Optional[ValidationReport] = None

    @property
    def valid(self) -> bool:
        return self.report is None or self.report.valid


class NL2SQLTranslator:
    """Schema-aware, few-shot NL2SQL translation."""

    def __init__(
        self,
        client: CompletionProvider,
        db: Database,
        example_pool: Sequence[Tuple[str, str]] = (),
        n_examples: int = 3,
        model: Optional[str] = None,
        validate: bool = True,
    ) -> None:
        self.client = client
        self.db = db
        self.example_pool = list(example_pool)
        self.n_examples = n_examples
        self.model = model
        self.validator = SQLValidator(db) if validate else None

    def _select_examples(self, question: str) -> List[Tuple[str, str]]:
        if not self.example_pool or self.n_examples <= 0:
            return []
        return similarity_select(
            question,
            self.example_pool,
            k=self.n_examples,
            text_of=lambda pair: pair[0],
        )

    def translate(self, question: str) -> TranslationResult:
        """Translate one question; validates when a validator is set."""
        prompt = nl2sql_prompt(question, self.db.schema_text(), self._select_examples(question))
        completion = self.client.complete(prompt, model=self.model)
        report = self.validator.validate(completion.text) if self.validator else None
        return TranslationResult(question=question, sql=completion.text, report=report)

    def evaluate(self, examples: Sequence[NLExample]) -> dict:
        """Execution accuracy + cost over a workload."""
        if not examples:
            raise ValueError("need at least one example")
        cost_before = self.client.meter.cost
        hits = 0
        for example in examples:
            result = self.translate(example.question)
            if execution_match(self.db, result.sql, example.gold_sql):
                hits += 1
        return {
            "execution_accuracy": hits / len(examples),
            "api_cost": self.client.meter.cost - cost_before,
            "n": len(examples),
        }
