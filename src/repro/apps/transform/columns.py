"""Transformation for table columns (Section II-B3).

* :func:`mine_column_pattern` — column pattern mining through the LLM
  (the "Aug <digit>{2} 2023" tightest-pattern example);
* :func:`synthesize_column_transform` — find the program that maps a source
  column onto a joinable target column (date / name / phone reformatting),
  verified against every provided value pair;
* :class:`PatternValidator` — data-quality validation: mine the pattern of
  a trusted baseline column, then flag nonconforming values in refreshed
  data (the schema-drift check the paper describes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.prompts.templates import pattern_mine_prompt
from repro.errors import TransformError
from repro.serving import CompletionProvider
from repro.llm.engines.patterns import mine_pattern, pattern_matches

_MONTHS = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]

# ------------------------------------------------------------------ parsers

_DateTuple = Tuple[int, int, int]  # (year, month, day)


def _parse_date_mdy(value: str) -> Optional[_DateTuple]:
    m = re.match(r"^([A-Z][a-z]{2}) (\d{1,2}) (\d{4})$", value.strip())
    if m and m.group(1) in _MONTHS:
        return (int(m.group(3)), _MONTHS.index(m.group(1)) + 1, int(m.group(2)))
    return None


def _parse_date_slash(value: str) -> Optional[_DateTuple]:
    m = re.match(r"^(\d{1,2})/(\d{1,2})/(\d{4})$", value.strip())
    if m:
        return (int(m.group(3)), int(m.group(1)), int(m.group(2)))
    return None


def _parse_date_iso(value: str) -> Optional[_DateTuple]:
    m = re.match(r"^(\d{4})-(\d{2})-(\d{2})$", value.strip())
    if m:
        return (int(m.group(1)), int(m.group(2)), int(m.group(3)))
    return None


_DATE_PARSERS = {
    "mdy": _parse_date_mdy,
    "slash": _parse_date_slash,
    "iso": _parse_date_iso,
}
_DATE_FORMATTERS: dict = {
    "mdy": lambda y, m, d: f"{_MONTHS[m - 1]} {d:02d} {y}",
    "slash": lambda y, m, d: f"{m}/{d}/{y}",
    "iso": lambda y, m, d: f"{y:04d}-{m:02d}-{d:02d}",
}

_NameTuple = Tuple[str, str]  # (first, last)


def _parse_name_first_last(value: str) -> Optional[_NameTuple]:
    m = re.match(r"^([A-Z][a-z]+) ([A-Z][a-z]+)$", value.strip())
    if m:
        return (m.group(1), m.group(2))
    return None


def _parse_name_last_first(value: str) -> Optional[_NameTuple]:
    m = re.match(r"^([A-Z][a-z]+), ([A-Z][a-z]+)$", value.strip())
    if m:
        return (m.group(2), m.group(1))
    return None


_NAME_PARSERS = {"first_last": _parse_name_first_last, "last_first": _parse_name_last_first}
_NAME_FORMATTERS: dict = {
    "first_last": lambda first, last: f"{first} {last}",
    "last_first": lambda first, last: f"{last}, {first}",
}

_PhoneTuple = Tuple[str, str, str]


def _parse_phone(value: str) -> Optional[_PhoneTuple]:
    m = re.match(r"^(\d{3})[-. ]?(\d{3})[-. ]?(\d{4})$", value.strip())
    if m:
        return (m.group(1), m.group(2), m.group(3))
    return None


_PHONE_FORMATTERS: dict = {
    "dash": lambda a, b, c: f"{a}-{b}-{c}",
    "dot": lambda a, b, c: f"{a}.{b}.{c}",
    "plain": lambda a, b, c: f"{a}{b}{c}",
}


@dataclass(frozen=True)
class ColumnTransform:
    """A verified value transformation between two column formats."""

    name: str
    apply_fn: Callable[[str], Optional[str]]

    def apply(self, value: str) -> str:
        """Transform one value; raises TransformError when unparseable."""
        out = self.apply_fn(value)
        if out is None:
            raise TransformError(f"{self.name} cannot transform {value!r}")
        return out

    def apply_all(self, values: Sequence[str]) -> List[str]:
        return [self.apply(v) for v in values]


def _candidates() -> List[ColumnTransform]:
    transforms: List[ColumnTransform] = []
    for src_name, parser in _DATE_PARSERS.items():
        for dst_name, formatter in _DATE_FORMATTERS.items():
            if src_name == dst_name:
                continue
            transforms.append(
                ColumnTransform(
                    name=f"date_{src_name}_to_{dst_name}",
                    apply_fn=lambda v, p=parser, f=formatter: (
                        f(*p(v)) if p(v) is not None else None
                    ),
                )
            )
    for src_name, parser in _NAME_PARSERS.items():
        for dst_name, formatter in _NAME_FORMATTERS.items():
            if src_name == dst_name:
                continue
            transforms.append(
                ColumnTransform(
                    name=f"name_{src_name}_to_{dst_name}",
                    apply_fn=lambda v, p=parser, f=formatter: (
                        f(*p(v)) if p(v) is not None else None
                    ),
                )
            )
    for dst_name, formatter in _PHONE_FORMATTERS.items():
        transforms.append(
            ColumnTransform(
                name=f"phone_to_{dst_name}",
                apply_fn=lambda v, f=formatter: (
                    f(*_parse_phone(v)) if _parse_phone(v) is not None else None
                ),
            )
        )
    return transforms


def synthesize_column_transform(
    source_values: Sequence[str], target_values: Sequence[str]
) -> Optional[ColumnTransform]:
    """Find a transform mapping every source value to its aligned target.

    Programming-by-example over the transform library; returns None when no
    candidate is consistent with all pairs."""
    if len(source_values) != len(target_values) or not source_values:
        raise ValueError("need equal, non-zero numbers of source and target values")
    for transform in _candidates():
        try:
            if all(
                transform.apply_fn(s) == t for s, t in zip(source_values, target_values)
            ):
                return transform
        except (TypeError, ValueError):  # defensive: malformed parse output
            continue
    return None


def columns_joinable(source_values: Sequence[str], target_values: Sequence[str]) -> bool:
    """Two columns are joinable when some verified transform links them
    (the paper's definition of joinable columns)."""
    if len(source_values) != len(target_values) or not source_values:
        return False
    return synthesize_column_transform(source_values, target_values) is not None


def mine_column_pattern(
    client: CompletionProvider, values: Sequence[str], model: Optional[str] = None
) -> str:
    """Mine a column's pattern through the LLM (Section II-B3)."""
    completion = client.complete(pattern_mine_prompt(values), model=model)
    return completion.text


@dataclass
class PatternValidator:
    """Pattern-based data-quality validation for refreshed columns."""

    pattern: str

    @classmethod
    def from_baseline(cls, baseline_values: Sequence[str]) -> "PatternValidator":
        """Mine the pattern of a trusted baseline column locally."""
        pattern = mine_pattern(list(baseline_values))
        if pattern is None:
            raise TransformError("baseline column has no consistent pattern")
        return cls(pattern=pattern)

    @classmethod
    def from_llm(
        cls, client: CompletionProvider, baseline_values: Sequence[str], model: Optional[str] = None
    ) -> "PatternValidator":
        """Mine the baseline pattern through the LLM."""
        pattern = mine_column_pattern(client, baseline_values, model=model)
        if pattern == "no common pattern":
            raise TransformError("LLM found no consistent pattern")
        return cls(pattern=pattern)

    def conforming(self, value: str) -> bool:
        return pattern_matches(self.pattern, value)

    def drift_rate(self, values: Sequence[str]) -> float:
        """Fraction of values violating the baseline pattern."""
        if not values:
            return 0.0
        bad = sum(1 for v in values if not self.conforming(v))
        return bad / len(values)

    def validate_batch(self, values: Sequence[str], tolerance: float = 0.05) -> bool:
        """Accept a refreshed batch when drift stays under tolerance."""
        return self.drift_rate(values) <= tolerance
