"""NL2Transaction (Section II-B1): natural language → atomic SQL scripts.

The paper's running example: "Alice buys a laptop from Bob for $1,000 and
Bob pays $5 freight to the express company" — one scenario, several SQL
statements, atomic. The translator renders the scenario, asks the LLM for
the transaction script, validates it (atomic framing + balance
conservation), and only then applies it to the database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.prompts.templates import transaction_prompt
from repro.core.validation import TransactionValidator, ValidationReport
from repro.errors import ValidationError
from repro.serving import CompletionProvider
from repro.sqldb import Database
from repro.sqldb.types import SQLType


@dataclass(frozen=True)
class Payment:
    """One payment clause of a scenario."""

    payer: str
    payee: str
    amount: float

    def render(self) -> str:
        amount = int(self.amount) if float(self.amount).is_integer() else self.amount
        return f"{self.payer} pays {self.payee} ${amount}"


@dataclass(frozen=True)
class TransactionResult:
    """Generated script plus validation; applied only when valid."""

    scenario: str
    sql: str
    report: ValidationReport
    applied: bool


def make_accounts_db(balances: dict) -> Database:
    """Build an accounts database from an {owner: balance} mapping."""
    db = Database()
    db.create_table(
        "accounts", [("owner", SQLType.TEXT), ("balance", SQLType.REAL)], primary_key="owner"
    )
    db.insert_rows("accounts", [[owner, float(balance)] for owner, balance in balances.items()])
    return db


class NL2TransactionTranslator:
    """Scenario → validated, atomically-applied SQL transaction."""

    def __init__(self, client: CompletionProvider, db: Database, model: Optional[str] = None) -> None:
        self.client = client
        self.db = db
        self.model = model
        self.validator = TransactionValidator(db)

    def translate(self, payments: Sequence[Payment]) -> TransactionResult:
        """Translate and (when valid) apply a payment scenario."""
        if not payments:
            raise ValueError("scenario needs at least one payment")
        scenario = ". ".join(p.render() for p in payments) + "."
        prompt = transaction_prompt(scenario)
        completion = self.client.complete(prompt, model=self.model)
        report = self.validator.validate(completion.text)
        applied = False
        if report.valid:
            self.db.execute(completion.text)
            applied = True
        return TransactionResult(
            scenario=scenario, sql=completion.text, report=report, applied=applied
        )

    def translate_or_raise(self, payments: Sequence[Payment]) -> TransactionResult:
        """Like :meth:`translate` but raises on validation failure —
        the behavior a production pipeline wants."""
        result = self.translate(payments)
        if not result.applied:
            raise ValidationError(
                f"generated transaction failed checks: {result.report.failed_checks()}"
            )
        return result
