"""Data-quality monitoring over refreshed data (Section II-B3).

"Data is often refreshed. Consequently, data quality issues (e.g., data
drift and schema drift) may arise, which causes the model to be inaccurate
and need to be retrained. To validate whether the data is updated is thus
important."

:class:`DriftMonitor` watches a stream of column batches against a trusted
baseline along two axes:

* **schema/format drift** — the fraction of values violating the baseline's
  mined pattern (:class:`~repro.apps.transform.columns.PatternValidator`);
* **distribution drift** — for numeric columns, a standardized mean-shift
  statistic against the baseline's mean/std.

Each check yields a :class:`DriftReport`; the monitor keeps the recent
window so slow drifts surface even when every single batch stays under the
per-batch tolerance.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.apps.transform.columns import PatternValidator
from repro.errors import TransformError


@dataclass(frozen=True)
class DriftReport:
    """Outcome of checking one refreshed batch."""

    batch_index: int
    pattern_drift: float  # fraction of pattern-violating values
    mean_shift: Optional[float]  # standardized |mean diff|; None for text
    drifted: bool
    reason: str = ""


class DriftMonitor:
    """Window-based drift monitoring for one column."""

    def __init__(
        self,
        baseline_values: Sequence[str],
        pattern_tolerance: float = 0.05,
        mean_shift_tolerance: float = 1.0,
        window: int = 5,
    ) -> None:
        if not baseline_values:
            raise ValueError("baseline must not be empty")
        self.pattern_tolerance = pattern_tolerance
        self.mean_shift_tolerance = mean_shift_tolerance
        self.window = window
        try:
            self.pattern_validator: Optional[PatternValidator] = PatternValidator.from_baseline(
                list(baseline_values)
            )
        except TransformError:
            self.pattern_validator = None  # too diverse for a shape pattern
        numeric = self._numeric(baseline_values)
        if numeric is not None:
            self.baseline_mean = sum(numeric) / len(numeric)
            variance = sum((v - self.baseline_mean) ** 2 for v in numeric) / len(numeric)
            self.baseline_std = math.sqrt(variance) or 1.0
        else:
            self.baseline_mean = None
            self.baseline_std = None
        self._batches_seen = 0
        self._recent: Deque[DriftReport] = deque(maxlen=window)

    @staticmethod
    def _numeric(values: Sequence[str]) -> Optional[List[float]]:
        out = []
        for value in values:
            try:
                out.append(float(str(value).replace(",", "")))
            except ValueError:
                return None
        return out if out else None

    # ------------------------------------------------------------- checks

    def check_batch(self, values: Sequence[str]) -> DriftReport:
        """Check one refreshed batch; returns (and remembers) the report."""
        if not values:
            raise ValueError("batch must not be empty")
        self._batches_seen += 1
        pattern_drift = (
            self.pattern_validator.drift_rate(list(values))
            if self.pattern_validator is not None
            else 0.0
        )
        mean_shift: Optional[float] = None
        if self.baseline_mean is not None:
            numeric = self._numeric(values)
            if numeric is None:
                # Numeric baseline but non-numeric batch: total format drift.
                pattern_drift = max(pattern_drift, 1.0)
            else:
                batch_mean = sum(numeric) / len(numeric)
                mean_shift = abs(batch_mean - self.baseline_mean) / self.baseline_std

        reasons = []
        if pattern_drift > self.pattern_tolerance:
            reasons.append(f"pattern drift {pattern_drift:.2f} > {self.pattern_tolerance}")
        if mean_shift is not None and mean_shift > self.mean_shift_tolerance:
            reasons.append(f"mean shift {mean_shift:.2f}σ > {self.mean_shift_tolerance}σ")
        report = DriftReport(
            batch_index=self._batches_seen,
            pattern_drift=pattern_drift,
            mean_shift=mean_shift,
            drifted=bool(reasons),
            reason="; ".join(reasons),
        )
        self._recent.append(report)
        return report

    # ------------------------------------------------------------- window

    @property
    def recent_reports(self) -> List[DriftReport]:
        return list(self._recent)

    def window_alarm(self, min_drifted: int = 2) -> bool:
        """True when ``min_drifted`` of the recent window batches drifted —
        the retrain trigger for downstream ML (the paper's motivation)."""
        return sum(1 for r in self._recent if r.drifted) >= min_drifted

    def creeping_mean_shift(self) -> Optional[float]:
        """Trend detector: mean shift of the window's latest batch minus its
        earliest — positive values mean the column is drifting away."""
        shifts = [r.mean_shift for r in self._recent if r.mean_shift is not None]
        if len(shifts) < 2:
            return None
        return shifts[-1] - shifts[0]
