"""Transformation for tables (Section II-B2, Fig 4).

Both modes the paper describes:

* **direct transform** — the LLM reads the XML/JSON document and emits the
  relational table (:func:`json_to_grid`, :func:`xml_to_grid`);
* **code synthesis** — the LLM emits an *operator program* which is then
  applied locally (:func:`relationalize`), so one LLM call can relationalize
  many similarly-shaped tables — the paper's cost argument.

:func:`relationalize_direct` is the non-LLM baseline: the same beam-search
synthesis run locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.prompts.templates import operator_synthesis_prompt, table_extract_prompt
from repro.errors import TransformError
from repro.serving import CompletionProvider
from repro.llm.engines.transform import parse_rendered_table
from repro.tablekit import Grid, apply_program, parse_program, synthesize_program
from repro.tablekit.synthesis import program_to_text, relational_score


@dataclass(frozen=True)
class TableTransformResult:
    """Output of one relationalization, with provenance."""

    grid: Grid
    program_text: str  # empty for direct extraction
    mode: str  # 'direct' | 'program' | 'local'
    score: float  # relational score of the output


def _grid_from_completion(text: str) -> Grid:
    columns, rows = parse_rendered_table(text)
    if not columns:
        raise TransformError("LLM output contained no table")
    return Grid(rows, header=columns)


def json_to_grid(client: CompletionProvider, json_text: str, model: Optional[str] = None) -> TableTransformResult:
    """Direct JSON → relational table through the LLM (Fig 4, left)."""
    completion = client.complete(table_extract_prompt(json_text), model=model)
    grid = _grid_from_completion(completion.text)
    return TableTransformResult(
        grid=grid, program_text="", mode="direct", score=relational_score(grid)
    )


def xml_to_grid(client: CompletionProvider, xml_text: str, model: Optional[str] = None) -> TableTransformResult:
    """Direct XML → relational table through the LLM (Fig 4, left)."""
    completion = client.complete(table_extract_prompt(xml_text), model=model)
    grid = _grid_from_completion(completion.text)
    return TableTransformResult(
        grid=grid, program_text="", mode="direct", score=relational_score(grid)
    )


def relationalize(
    client: CompletionProvider, grid: Grid, model: Optional[str] = None
) -> TableTransformResult:
    """Code-synthesis mode: LLM emits an operator program, applied locally.

    Falls back to local synthesis when the LLM's program fails to parse or
    apply (the validate-and-recover loop of Section III-E)."""
    prompt = operator_synthesis_prompt(grid.render(), has_header=grid.header is not None)
    completion = client.complete(prompt, model=model)
    try:
        program = parse_program(completion.text)
        result = apply_program(grid, program)
        return TableTransformResult(
            grid=result,
            program_text=completion.text,
            mode="program",
            score=relational_score(result),
        )
    except TransformError:
        return relationalize_direct(grid)


def relationalize_direct(grid: Grid) -> TableTransformResult:
    """Non-LLM baseline: local beam-search synthesis."""
    program, result, score = synthesize_program(grid)
    return TableTransformResult(
        grid=result, program_text=program_to_text(program), mode="local", score=score
    )


# ---------------------------------------------------------------- documents


def render_json_records(records: List[dict], indent: int = 1) -> str:
    """Helper used by examples/benches to build JSON documents."""
    import json

    return json.dumps(records, indent=indent)


def render_xml_records(root: str, record_tag: str, records: List[dict]) -> str:
    """Helper used by examples/benches to build simple XML documents."""
    lines = [f"<{root}>"]
    for record in records:
        lines.append(f"  <{record_tag}>")
        for key, value in record.items():
            lines.append(f"    <{key}>{value}</{key}>")
        lines.append(f"  </{record_tag}>")
    lines.append(f"</{root}>")
    return "\n".join(lines)
