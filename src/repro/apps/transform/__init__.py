"""LLM for data transformation (Section II-B)."""

from repro.apps.transform.nl2sql import NL2SQLTranslator
from repro.apps.transform.transaction import NL2TransactionTranslator, Payment
from repro.apps.transform.tables import (
    TableTransformResult,
    json_to_grid,
    relationalize,
    relationalize_direct,
    xml_to_grid,
)
from repro.apps.transform.columns import (
    ColumnTransform,
    PatternValidator,
    mine_column_pattern,
    synthesize_column_transform,
)
from repro.apps.transform.pipeline import PipelineSearcher, PipelineStep, PreparedPipeline

__all__ = [
    "ColumnTransform",
    "NL2SQLTranslator",
    "NL2TransactionTranslator",
    "PatternValidator",
    "Payment",
    "PipelineSearcher",
    "PipelineStep",
    "PreparedPipeline",
    "TableTransformResult",
    "json_to_grid",
    "mine_column_pattern",
    "relationalize",
    "relationalize_direct",
    "synthesize_column_transform",
    "xml_to_grid",
]
