"""LLM for data exploration (Section II-D)."""

from repro.apps.explore.lake import LakeQueryResult, MultiModalLake
from repro.apps.explore.llmdb import LLMDatabase, VirtualColumn, VirtualTable

__all__ = [
    "LLMDatabase",
    "LakeQueryResult",
    "MultiModalLake",
    "VirtualColumn",
    "VirtualTable",
]
