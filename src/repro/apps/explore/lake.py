"""Multi-modal data lake management (Section II-D1, III-B2).

Items of every modality are embedded into one joint space (the LLM's
embedding of their text surrogate), stored in the vector database with
attribute metadata, and queried through the hybrid planner — vector
similarity plus attribute filters, with granularity control for table
items (whole table vs per-row embeddings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.hybrid import HybridPlanner, PlanDecision
from repro.datasets.lake import LakeItem
from repro.serving import CompletionProvider
from repro.vectordb import Collection, FilterStrategy, Metric, SearchReport


@dataclass(frozen=True)
class LakeQueryResult:
    """Hits plus the plan the hybrid planner chose."""

    items: Tuple[LakeItem, ...]
    report: SearchReport
    decision: PlanDecision


class MultiModalLake:
    """A queryable multi-modal data lake over the vector database."""

    def __init__(
        self,
        client: CompletionProvider,
        embedding_dim: int = 64,
        index: str = "flat",
    ) -> None:
        self.client = client
        self.collection = Collection(dim=embedding_dim, metric=Metric.COSINE, index=index)
        self.planner = HybridPlanner(self.collection)
        self._items: Dict[str, LakeItem] = {}

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------ loading

    def add_item(self, item: LakeItem) -> None:
        """Embed and index one item (metadata carries modality + entity)."""
        vector = self.client.embed(item.embedding_text)
        metadata = {"modality": item.modality, **item.metadata}
        self.collection.add(item.item_id, vector, metadata=metadata, payload=item)
        self._items[item.item_id] = item

    def add_items(self, items: Sequence[LakeItem]) -> None:
        for item in items:
            self.add_item(item)

    def add_table_rows(
        self,
        table_name: str,
        header: Sequence[str],
        rows: Sequence[Sequence[object]],
        granularity: str = "row",
    ) -> List[str]:
        """Index a relational table at the chosen embedding granularity.

        ``granularity='row'`` stores one vector per row (precise but many
        vectors); ``'table'`` one vector for the whole table (cheap but
        coarse) — the Section III-B2 granularity trade-off the ablation
        bench measures."""
        ids: List[str] = []
        if granularity == "table":
            content = "; ".join(
                f"{h}: {v}" for row in rows for h, v in zip(header, row)
            )
            item = LakeItem(
                item_id=f"table-{table_name}",
                modality="table",
                content=f"table {table_name}: {content}",
                metadata={"table": table_name, "granularity": "table"},
            )
            self.add_item(item)
            ids.append(item.item_id)
            return ids
        for i, row in enumerate(rows):
            content = "; ".join(f"{h}: {v}" for h, v in zip(header, row))
            item = LakeItem(
                item_id=f"table-{table_name}-r{i}",
                modality="table",
                content=content,
                metadata={"table": table_name, "granularity": "row"},
            )
            self.add_item(item)
            ids.append(item.item_id)
        return ids

    # ------------------------------------------------------------ querying

    def query(
        self,
        text: str,
        k: int = 5,
        where: Optional[Mapping[str, object]] = None,
    ) -> LakeQueryResult:
        """Natural-language query across all modalities.

        ``where`` carries attribute constraints (e.g. ``{"entity_type":
        "professor"}`` — the paper's Michael Jordan disambiguation)."""
        vector = self.client.embed(text)
        report, decision = self.planner.search(vector, k=k, where=where)
        items = tuple(hit.payload for hit in report.hits if hit.payload is not None)
        return LakeQueryResult(items=items, report=report, decision=decision)

    def query_by_modality(self, text: str, modality: str, k: int = 5) -> LakeQueryResult:
        return self.query(text, k=k, where={"modality": modality})
