"""LLM as databases (Section II-D2, ref [60] "querying LLMs with SQL").

Virtual tables declare how each column's values are *extracted from the
LLM*: a key column enumerates entities, and every other column has a
question template the LLM answers per entity. ``execute`` materializes the
referenced virtual tables through LLM sub-queries (the paper's "decomposed
sub-queries extract information from corresponding LLMs, just like
searching from tables") and then runs the actual SQL on the relational
engine.

Because extraction goes through the capability model, a weak model yields
a *wrong database* — and downstream SQL faithfully reports wrong answers,
which is precisely the reliability concern Section III-E raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.prompts.templates import qa_prompt
from repro.serving import CompletionProvider
from repro.sqldb import Database, Result
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_statement
from repro.sqldb.types import SQLType


@dataclass(frozen=True)
class VirtualColumn:
    """One LLM-backed column: name, type, and its question template."""

    name: str
    sql_type: SQLType
    question_template: str  # '{entity}' placeholder

    def question(self, entity: str) -> str:
        return self.question_template.format(entity=entity)


@dataclass(frozen=True)
class VirtualTable:
    """A table whose rows are materialized by querying the LLM."""

    name: str
    key_column: str
    entities: Tuple[str, ...]
    columns: Tuple[VirtualColumn, ...]

    @property
    def all_column_specs(self) -> List[Tuple[str, SQLType]]:
        return [(self.key_column, SQLType.TEXT)] + [
            (c.name, c.sql_type) for c in self.columns
        ]


class LLMDatabase:
    """SQL façade over LLM-extracted knowledge."""

    def __init__(self, client: CompletionProvider, model: Optional[str] = None) -> None:
        self.client = client
        self.model = model
        self.tables: Dict[str, VirtualTable] = {}
        self._db = Database()
        self._materialized: Set[str] = set()

    def register(self, table: VirtualTable) -> None:
        """Register a virtual table (names must be unique)."""
        if table.name.lower() in self.tables:
            raise ValueError(f"virtual table {table.name!r} already registered")
        self.tables[table.name.lower()] = table

    def import_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, SQLType]],
        rows: Sequence[Sequence[object]],
        primary_key: Optional[str] = None,
    ) -> int:
        """Load a *real* relational table next to the virtual ones.

        This is the paper's intro claim made concrete: external knowledge
        (the LLM-backed virtual tables) joins against traditional relational
        data in one SQL query. Returns the number of rows imported."""
        self._db.create_table(name, columns, primary_key=primary_key)
        self._db.insert_rows(name, rows)
        return len(rows)

    # ------------------------------------------------------- materialization

    def materialize(self, table_name: str, force: bool = False) -> int:
        """Extract a virtual table's rows from the LLM; returns row count."""
        key = table_name.lower()
        if key not in self.tables:
            raise KeyError(f"no virtual table {table_name!r}")
        if key in self._materialized and not force:
            return len(self._db.table(table_name))
        table = self.tables[key]
        if force and self._db.has_table(table.name):
            self._db.execute(f"DROP TABLE {table.name}")
            self._materialized.discard(key)
        self._db.create_table(table.name, table.all_column_specs, primary_key=table.key_column)
        rows = []
        for entity in table.entities:
            row: List[object] = [entity]
            for column in table.columns:
                completion = self.client.complete(
                    qa_prompt(column.question(entity)), model=self.model
                )
                row.append(self._coerce(completion.text, column.sql_type))
            rows.append(row)
        self._db.insert_rows(table.name, rows)
        self._materialized.add(key)
        return len(rows)

    @staticmethod
    def _coerce(text: str, sql_type: SQLType) -> object:
        if sql_type is SQLType.INTEGER:
            try:
                return int(float(text))
            except ValueError:
                return None
        if sql_type is SQLType.REAL:
            try:
                return float(text)
            except ValueError:
                return None
        return text

    # ------------------------------------------------------------ execution

    def execute(self, sql: str) -> Result:
        """Run SQL over virtual tables, materializing them on demand."""
        statement = parse_statement(sql)
        for table_name in self._referenced_tables(statement):
            if table_name.lower() in self.tables:
                self.materialize(table_name)
        return self._db.execute(sql)

    def extraction_cost(self) -> float:
        """Dollars spent on LLM extraction so far."""
        return self.client.meter.cost

    @staticmethod
    def _referenced_tables(statement: ast.Statement) -> List[str]:
        tables: List[str] = []

        def visit_source(source) -> None:
            if isinstance(source, ast.TableName):
                tables.append(source.name)
            elif isinstance(source, ast.Join):
                visit_source(source.left)
                visit_source(source.right)
            elif isinstance(source, ast.SubquerySource):
                visit_select(source.select)

        def visit_select(select: ast.Select) -> None:
            visit_source(select.source)
            for set_op in select.set_ops:
                visit_select(set_op.select)
            exprs = [i.expr for i in select.items]
            if select.where is not None:
                exprs.append(select.where)
            for expr in exprs:
                for node in ast.walk_expr(expr):
                    if isinstance(node, (ast.InSelect, ast.Exists, ast.ScalarSubquery)):
                        visit_select(node.select)

        if isinstance(statement, ast.Select):
            visit_select(statement)
        return tables


def film_virtual_table(films: Sequence[str]) -> VirtualTable:
    """The stock example: a films table extracted from the LLM's knowledge."""
    return VirtualTable(
        name="films",
        key_column="title",
        entities=tuple(films),
        columns=(
            VirtualColumn(
                name="director",
                sql_type=SQLType.TEXT,
                question_template="Who directed {entity}?",
            ),
            VirtualColumn(
                name="released",
                sql_type=SQLType.INTEGER,
                question_template="In which year was {entity} released?",
            ),
        ),
    )
