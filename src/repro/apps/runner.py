"""Checkpointed batch-pipeline runner: resume instead of restart.

A millions-of-rows enrichment or transform job that dies at row 900k
should not re-pay 900k LLM calls. :class:`CheckpointedRunner` drives a
row-at-a-time job through any :class:`~repro.serving.CompletionProvider`
and journals every finished row to a durable directory
(:class:`~repro.durability.Journal` + an atomically-written manifest).
A re-run over the same rows replays the journal — restoring each finished
row's result *without touching the provider* — and continues from the
first unfinished row.

Crash-safety contract, exercised at every crash index by the tests:

* A row's record is appended only after its completion returned, so a
  crash mid-row loses at most that row's (unacknowledged) work.
* A torn final journal line (crash mid-append) is discarded by the
  reader; the row re-runs and — the provider being deterministic —
  produces the identical result.
* The manifest fingerprints the workload (row count + a stable hash of
  the row keys), so resuming against a *different* workload fails loudly
  instead of stitching two jobs together.

Pair it with ``build_stack(durable_dir=...)`` and the *stack's* state
(semantic cache, ledgers) survives too: resumed rows that repeat earlier
prompts become warm cache hits rather than new provider calls.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro._util import stable_hash
from repro.durability.atomic import atomic_write_json
from repro.durability.journal import Journal

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.log"
MANIFEST_SCHEMA = "repro.apps.runner/v1"


@dataclass(frozen=True)
class RowResult:
    """One finished row: its index, the prompt sent and the answer."""

    index: int
    prompt: str
    text: str
    model: str
    cost: float
    confidence: float
    replayed: bool = False  # True when restored from the journal


@dataclass
class RunReport:
    """Outcome of one :meth:`CheckpointedRunner.run` invocation."""

    results: List[RowResult] = field(default_factory=list)
    resumed_rows: int = 0  # rows restored from the journal this run
    fresh_rows: int = 0  # rows actually executed this run

    @property
    def total_rows(self) -> int:
        return len(self.results)

    def texts(self) -> List[str]:
        return [result.text for result in self.results]


def workload_fingerprint(rows: Sequence[str]) -> str:
    """Stable identity of a workload: row count + hash of the row keys."""
    h = stable_hash("\x1f".join(rows))
    return f"{len(rows)}:{h:016x}"


class CheckpointedRunner:
    """Durable, resumable row-at-a-time batch runner.

    Parameters
    ----------
    provider:
        Any completion provider — a bare client or a full serving stack.
    durable_dir:
        Directory for the manifest and the results journal. One directory
        is one job; re-running with the same directory resumes it.
    prompt_fn:
        Maps a row to its prompt (default: the row itself).
    model:
        Optional explicit model for every row.
    sync:
        Fsync each journal append (see :class:`~repro.durability.Journal`).
    """

    def __init__(
        self,
        provider: object,
        durable_dir: str,
        *,
        prompt_fn: Optional[Callable[[str], str]] = None,
        model: Optional[str] = None,
        sync: bool = False,
    ) -> None:
        self.provider = provider
        self.durable_dir = durable_dir
        self.prompt_fn = prompt_fn
        self.model = model
        os.makedirs(durable_dir, exist_ok=True)
        self.manifest_path = os.path.join(durable_dir, MANIFEST_NAME)
        self.journal = Journal(os.path.join(durable_dir, RESULTS_NAME), sync=sync)

    # -------------------------------------------------------------- manifest

    def _read_manifest(self) -> Optional[Dict[str, object]]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def _ensure_manifest(self, rows: Sequence[str]) -> None:
        fingerprint = workload_fingerprint(rows)
        existing = self._read_manifest()
        if existing is None:
            atomic_write_json(
                self.manifest_path,
                {
                    "schema": MANIFEST_SCHEMA,
                    "n_rows": len(rows),
                    "fingerprint": fingerprint,
                    "model": self.model,
                },
            )
            return
        if existing.get("fingerprint") != fingerprint:
            raise ValueError(
                f"durable dir {self.durable_dir!r} holds progress for a "
                f"different workload (manifest fingerprint "
                f"{existing.get('fingerprint')!r} != {fingerprint!r}); use a "
                "fresh directory per job"
            )

    # ------------------------------------------------------------------ run

    def completed_indices(self) -> Dict[int, Dict[str, object]]:
        """Journaled results by row index (journal replay, provider-free)."""
        done: Dict[int, Dict[str, object]] = {}
        for record in self.journal.records():
            if record.get("op") == "row":
                done[int(record["index"])] = record
        return done

    def run(self, rows: Sequence[str]) -> RunReport:
        """Process ``rows``, resuming from the journal where possible.

        Finished rows are restored without provider calls; unfinished rows
        run in index order, each journaled as soon as it completes. A
        crash (any exception, including
        :class:`~repro.errors.SimulatedCrashError`) propagates after the
        journal has absorbed every finished row — re-invoking ``run``
        picks up exactly where the crash left off.
        """
        rows = list(rows)
        self._ensure_manifest(rows)
        done = self.completed_indices()
        report = RunReport()
        for index, row in enumerate(rows):
            record = done.get(index)
            if record is not None:
                report.results.append(
                    RowResult(
                        index=index,
                        prompt=record["prompt"],
                        text=record["text"],
                        model=record["model"],
                        cost=float(record["cost"]),
                        confidence=float(record["confidence"]),
                        replayed=True,
                    )
                )
                report.resumed_rows += 1
                continue
            prompt = self.prompt_fn(row) if self.prompt_fn is not None else row
            completion = self.provider.complete(prompt, model=self.model)
            self.journal.append(
                {
                    "op": "row",
                    "index": index,
                    "prompt": prompt,
                    "text": completion.text,
                    "model": completion.model,
                    "cost": completion.cost,
                    "confidence": completion.confidence,
                }
            )
            report.results.append(
                RowResult(
                    index=index,
                    prompt=prompt,
                    text=completion.text,
                    model=completion.model,
                    cost=completion.cost,
                    confidence=completion.confidence,
                )
            )
            report.fresh_rows += 1
        return report

    def close(self) -> None:
        self.journal.close()
