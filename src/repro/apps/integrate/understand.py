"""Table understanding (Section II-C2).

The paper's three enhancement paths, implemented:

1. **semantic serialization** — rows become natural-language sentences via
   the LLM (not bare ``col1 | col2`` linearization);
2. **SQL→NL statistical facts** — statistics-bearing SQL (AVG/COUNT/...)
   is executed and its result verbalized by the LLM, producing training
   sentences for downstream PLMs;
3. **large-table chunking** — token-budgeted row chunks plus representative
   tuple selection (greedy k-center over numeric columns) so big tables fit
   a PLM's input window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.prompts.templates import row_serialize_prompt, sql2nl_prompt
from repro.serving import CompletionProvider
from repro.llm.tokenizer import count_tokens
from repro.sqldb import Database
from repro.sqldb.catalog import Table


@dataclass(frozen=True)
class ChunkPlan:
    """Token-budgeted split of a table into row ranges."""

    ranges: Tuple[Tuple[int, int], ...]  # [start, end) row indexes
    tokens_per_chunk: Tuple[int, ...]

    @property
    def n_chunks(self) -> int:
        return len(self.ranges)


class TableUnderstanding:
    """LLM-assisted serialization, statistics facts and chunking."""

    def __init__(self, client: CompletionProvider, db: Database, model: Optional[str] = None) -> None:
        self.client = client
        self.db = db
        self.model = model

    # -------------------------------------------------- 1. serialization

    def serialize_rows(self, table_name: str, limit: int = 10) -> List[str]:
        """Rows → NL sentences (the PLM training inputs)."""
        table = self.db.table(table_name)
        sentences = []
        for row in table.rows[:limit]:
            record = dict(zip(table.schema.column_names, row))
            prompt = row_serialize_prompt(table_name, record)
            sentences.append(self.client.complete(prompt, model=self.model).text)
        return sentences

    # ------------------------------------------- 2. SQL→NL statistics

    def statistics_sentences(self, table_name: str) -> List[str]:
        """Execute statistics SQL and verbalize each result (the paper's
        AVG(SALARY) example). One sentence per numeric column aggregate
        plus a row count."""
        table = self.db.table(table_name)
        sql_list: List[str] = [f"SELECT COUNT(*) FROM {table_name}"]
        for column in table.schema.columns:
            if column.sql_type.value in ("INTEGER", "REAL") and not column.primary_key:
                sql_list.append(f"SELECT AVG({column.name}) FROM {table_name}")
                sql_list.append(f"SELECT MAX({column.name}) FROM {table_name}")
        sentences = []
        for sql in sql_list:
            result = self.db.query_scalar(sql)
            if isinstance(result, float):
                result = round(result, 2)
            prompt = sql2nl_prompt(sql, result)
            sentences.append(self.client.complete(prompt, model=self.model).text)
        return sentences

    # ----------------------------------------------------- 3. chunking

    def chunk_plan(self, table_name: str, max_tokens_per_chunk: int = 256) -> ChunkPlan:
        """Split a table into row ranges whose serialized size fits the
        PLM input budget."""
        table = self.db.table(table_name)
        header_tokens = count_tokens(" | ".join(table.schema.column_names))
        ranges: List[Tuple[int, int]] = []
        token_counts: List[int] = []
        start = 0
        current = header_tokens
        for i, row in enumerate(table.rows):
            row_tokens = count_tokens(" | ".join(str(v) for v in row))
            if current + row_tokens > max_tokens_per_chunk and i > start:
                ranges.append((start, i))
                token_counts.append(current)
                start = i
                current = header_tokens
            current += row_tokens
        if start < len(table.rows) or not ranges:
            ranges.append((start, len(table.rows)))
            token_counts.append(current)
        return ChunkPlan(ranges=tuple(ranges), tokens_per_chunk=tuple(token_counts))

    def representative_tuples(self, table_name: str, k: int = 5) -> List[Tuple[object, ...]]:
        """Greedy k-center selection of representative rows.

        Numeric columns are normalized; categorical columns contribute a
        0/1 disagreement distance. The first center is the row closest to
        the column-wise median (the 'most typical' tuple)."""
        table = self.db.table(table_name)
        rows = table.rows
        if not rows:
            return []
        k = min(k, len(rows))
        matrix, weights = self._row_matrix(table)

        def distance(i: int, j: int) -> float:
            return float(np.sum(weights * np.abs(matrix[i] - matrix[j])))

        median = np.median(matrix, axis=0)
        first = int(np.argmin(np.sum(weights * np.abs(matrix - median), axis=1)))
        centers = [first]
        while len(centers) < k:
            best_row, best_dist = None, -1.0
            for i in range(len(rows)):
                if i in centers:
                    continue
                nearest = min(distance(i, c) for c in centers)
                if nearest > best_dist:
                    best_row, best_dist = i, nearest
            assert best_row is not None
            centers.append(best_row)
        return [rows[i] for i in centers]

    def _row_matrix(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        """Encode rows numerically: scaled numerics, hashed categoricals."""
        columns = table.schema.columns
        encoded = np.zeros((len(table.rows), len(columns)))
        weights = np.ones(len(columns))
        for j, column in enumerate(columns):
            values = [row[j] for row in table.rows]
            numeric = [
                float(v) for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            if numeric and len(numeric) == len(values):
                lo, hi = min(numeric), max(numeric)
                span = (hi - lo) or 1.0
                encoded[:, j] = [(float(v) - lo) / span for v in values]
            else:
                # Categorical: enumerate distinct values; distance is 0/1
                # via index inequality, approximated by scaled index gap.
                mapping: Dict[object, int] = {}
                for v in values:
                    mapping.setdefault(v, len(mapping))
                encoded[:, j] = [mapping[v] for v in values]
                weights[j] = 1.0 / max(len(mapping) - 1, 1)
        return encoded, weights
