"""Schema matching with LLMs (Section II-C1).

Matches columns across two tables: every cross pair is scored by the LLM's
yes/no judgment plus its reported confidence, then a greedy one-to-one
assignment produces the mapping (classical schema-matching post-processing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.prompts.templates import schema_match_prompt
from repro.serving import CompletionProvider


@dataclass(frozen=True)
class ColumnSpec:
    """A column: its name and a sample of its values."""

    name: str
    values: Tuple[str, ...]


@dataclass(frozen=True)
class MatchDecision:
    """One cross-pair judgment."""

    left: str
    right: str
    is_match: bool
    confidence: float


class SchemaMatcher:
    """LLM-scored, greedily-assigned column mapping between two schemas."""

    def __init__(self, client: CompletionProvider, model: Optional[str] = None) -> None:
        self.client = client
        self.model = model

    def judge(self, left: ColumnSpec, right: ColumnSpec) -> MatchDecision:
        """Ask the LLM whether two columns denote the same attribute."""
        prompt = schema_match_prompt(left.name, left.values, right.name, right.values)
        completion = self.client.complete(prompt, model=self.model)
        return MatchDecision(
            left=left.name,
            right=right.name,
            is_match=completion.text.strip().lower().startswith("yes"),
            confidence=completion.confidence,
        )

    def match(
        self, left_columns: Sequence[ColumnSpec], right_columns: Sequence[ColumnSpec]
    ) -> Dict[str, str]:
        """Produce a one-to-one left→right column mapping."""
        decisions: List[MatchDecision] = []
        for left in left_columns:
            for right in right_columns:
                decisions.append(self.judge(left, right))
        # Greedy assignment on (is_match, confidence).
        decisions.sort(key=lambda d: (-int(d.is_match), -d.confidence, d.left, d.right))
        mapping: Dict[str, str] = {}
        used_right = set()
        for decision in decisions:
            if not decision.is_match:
                continue
            if decision.left in mapping or decision.right in used_right:
                continue
            mapping[decision.left] = decision.right
            used_right.add(decision.right)
        return mapping

    def evaluate(
        self,
        left_columns: Sequence[ColumnSpec],
        right_columns: Sequence[ColumnSpec],
        gold_mapping: Dict[str, str],
    ) -> Dict[str, float]:
        """Precision/recall/F1 of the produced mapping against gold."""
        predicted = self.match(left_columns, right_columns)
        predicted_pairs = set(predicted.items())
        gold_pairs = set(gold_mapping.items())
        tp = len(predicted_pairs & gold_pairs)
        precision = tp / len(predicted_pairs) if predicted_pairs else 0.0
        recall = tp / len(gold_pairs) if gold_pairs else 0.0
        f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
        return {"precision": precision, "recall": recall, "f1": f1}
