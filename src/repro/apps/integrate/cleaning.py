"""Data cleaning with LLMs (Section II-C1).

Error *detection* is pattern-driven: the cleaner mines per-column patterns
from the (assumed mostly-clean) data and flags nonconforming cells — the
Section II-B3 connection the paper draws between mined patterns and data
quality. Missing-value *repair* routes through the few-shot label-inference
LLM path; format errors are repaired by the verified column-transform
synthesizer when one maps the bad value onto the column's pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.transform.columns import synthesize_column_transform
from repro.core.prompts.templates import label_infer_prompt
from repro.errors import TransformError
from repro.serving import CompletionProvider
from repro.llm.engines.patterns import mine_pattern, pattern_matches, tokenize_value


def _shape_signature(value: str) -> tuple:
    """Token-class shape of a value: ('letter', 'literal:-', 'digit', ...)."""
    out = []
    for token in tokenize_value(value):
        if token.isalpha():
            out.append("letter")
        elif token.isdigit():
            out.append("digit")
        else:
            out.append(f"lit:{token}")
    return tuple(out)


@dataclass(frozen=True)
class CellError:
    """One flagged cell."""

    row: int
    column: str
    value: Optional[str]
    kind: str  # 'missing' | 'pattern_violation'


@dataclass
class CleaningReport:
    """Errors found and repairs applied."""

    errors: List[CellError]
    repairs: Dict[Tuple[int, str], str]

    @property
    def repair_rate(self) -> float:
        if not self.errors:
            return 1.0
        return len(self.repairs) / len(self.errors)


class DataCleaner:
    """Pattern-based detection + LLM-assisted repair over row dicts."""

    def __init__(self, client: CompletionProvider, model: Optional[str] = None, min_support: int = 3) -> None:
        self.client = client
        self.model = model
        self.min_support = min_support

    # ------------------------------------------------------------ detection

    def detect(self, rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> List[CellError]:
        """Flag missing cells and pattern-violating values per column."""
        errors: List[CellError] = []
        patterns = self._column_patterns(rows, columns)
        for index, row in enumerate(rows):
            for column in columns:
                value = row.get(column)
                if value in (None, "", "?"):
                    errors.append(CellError(row=index, column=column, value=None, kind="missing"))
                    continue
                pattern = patterns.get(column)
                if pattern is not None and not pattern_matches(pattern, str(value)):
                    errors.append(
                        CellError(row=index, column=column, value=str(value), kind="pattern_violation")
                    )
        return errors

    def _column_patterns(
        self, rows: Sequence[Dict[str, object]], columns: Sequence[str]
    ) -> Dict[str, Optional[str]]:
        """Mine the majority pattern per column (None = too diverse)."""
        patterns: Dict[str, Optional[str]] = {}
        for column in columns:
            values = [str(r[column]) for r in rows if r.get(column) not in (None, "", "?")]
            if len(values) < self.min_support:
                patterns[column] = None
                continue
            # Majority-shape mining: group values by token-class shape, mine
            # the tight pattern of the dominant group, accept with >= 70%
            # support. Minority shapes are the pattern violations.
            groups: Dict[tuple, List[str]] = {}
            for value in values:
                groups.setdefault(_shape_signature(value), []).append(value)
            dominant = max(groups.values(), key=len)
            if len(dominant) >= 0.7 * len(values):
                patterns[column] = mine_pattern(dominant)
            else:
                patterns[column] = None
        return patterns

    # -------------------------------------------------------------- repairs

    def repair(
        self, rows: Sequence[Dict[str, object]], columns: Sequence[str]
    ) -> CleaningReport:
        """Detect and repair; returns the report (rows are not mutated)."""
        errors = self.detect(rows, columns)
        patterns = self._column_patterns(rows, columns)
        repairs: Dict[Tuple[int, str], str] = {}
        for error in errors:
            if error.kind == "missing":
                repaired = self._repair_missing(rows, columns, error)
            else:
                repaired = self._repair_format(rows, error, patterns.get(error.column))
            if repaired is not None:
                repairs[(error.row, error.column)] = repaired
        return CleaningReport(errors=errors, repairs=repairs)

    def apply(self, rows: List[Dict[str, object]], report: CleaningReport) -> List[Dict[str, object]]:
        """Return repaired copies of the rows."""
        out = [dict(r) for r in rows]
        for (row, column), value in report.repairs.items():
            out[row][column] = value
        return out

    def _repair_missing(
        self,
        rows: Sequence[Dict[str, object]],
        columns: Sequence[str],
        error: CellError,
    ) -> Optional[str]:
        """Few-shot infer the missing value from complete rows."""
        def serialize(row: Dict[str, object]) -> str:
            return "; ".join(
                f"{c}: {'?' if row.get(c) in (None, '', '?') else row.get(c)}" for c in columns
            )

        complete = [
            r for r in rows if all(r.get(c) not in (None, "", "?") for c in columns)
        ][:8]
        if not complete:
            return None
        prompt = label_infer_prompt(
            error.column, [serialize(r) for r in complete], serialize(rows[error.row])
        )
        completion = self.client.complete(prompt, model=self.model)
        return completion.text

    def _repair_format(
        self,
        rows: Sequence[Dict[str, object]],
        error: CellError,
        pattern: Optional[str],
    ) -> Optional[str]:
        """Reformat a deviant value onto the column's pattern when a
        verified transform exists."""
        if error.value is None or pattern is None:
            return None
        conforming = [
            str(r[error.column])
            for r in rows
            if r.get(error.column) not in (None, "", "?")
            and pattern_matches(pattern, str(r[error.column]))
        ]
        if not conforming:
            return None
        # Find a transform whose output shape matches the column pattern by
        # testing it on the bad value directly.
        from repro.apps.transform.columns import _candidates  # shared library

        for transform in _candidates():
            try:
                candidate = transform.apply_fn(error.value)
            except (TypeError, ValueError):
                continue
            if candidate is not None and pattern_matches(pattern, candidate):
                return candidate
        return None
