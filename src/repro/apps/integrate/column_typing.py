"""Column type annotation with LLMs (Section II-C1).

Implements the paper's exact prompt protocol: candidate types, numbered
example columns, then the query column ending in "this column type is __".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.prompts.templates import column_type_prompt
from repro.datasets.columns import ColumnExample
from repro.serving import CompletionProvider


@dataclass(frozen=True)
class AnnotationOutcome:
    """Predicted type for one column."""

    values: Tuple[str, ...]
    predicted: str
    gold: Optional[str] = None

    @property
    def correct(self) -> Optional[bool]:
        if self.gold is None:
            return None
        return self.predicted == self.gold


class ColumnTypeAnnotator:
    """Few-shot column type annotation through the LLM."""

    def __init__(
        self,
        client: CompletionProvider,
        candidate_types: Sequence[str],
        examples: Sequence[Tuple[Sequence[str], str]] = (),
        model: Optional[str] = None,
    ) -> None:
        if not candidate_types:
            raise ValueError("need at least one candidate type")
        self.client = client
        self.candidate_types = list(candidate_types)
        self.examples = list(examples)
        self.model = model

    def annotate(self, values: Sequence[str]) -> str:
        """Predict the semantic type of one value column."""
        prompt = column_type_prompt(self.candidate_types, self.examples, values)
        completion = self.client.complete(prompt, model=self.model)
        return completion.text.strip().lower()

    def evaluate(self, corpus: Sequence[ColumnExample]) -> Dict[str, float]:
        """Accuracy over a labeled corpus, plus per-type accuracy."""
        if not corpus:
            raise ValueError("corpus must not be empty")
        outcomes = [
            AnnotationOutcome(
                values=tuple(ex.values), predicted=self.annotate(ex.values), gold=ex.column_type
            )
            for ex in corpus
        ]
        accuracy = sum(1 for o in outcomes if o.correct) / len(outcomes)
        per_type: Dict[str, float] = {}
        for column_type in sorted({ex.column_type for ex in corpus}):
            subset = [o for o in outcomes if o.gold == column_type]
            per_type[column_type] = sum(1 for o in subset if o.correct) / len(subset)
        return {"accuracy": accuracy, **{f"accuracy[{t}]": a for t, a in per_type.items()}}
