"""Entity resolution with LLMs (Section II-C1).

The paper's canonical prompt — "Are the following entity descriptions the
same real-world entity?" — with optional few-shot examples, plus the
classical string-similarity baseline the LLM approach is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.prompts.templates import entity_match_prompt
from repro.datasets.entities import ERPair
from repro.serving import CompletionProvider
from repro.llm.engines.match import record_similarity


@dataclass(frozen=True)
class ERMetrics:
    """Accuracy / precision / recall / F1 for a pair workload."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    n: int


def _metrics(predictions: Sequence[bool], labels: Sequence[bool]) -> ERMetrics:
    tp = sum(1 for p, l in zip(predictions, labels) if p and l)
    fp = sum(1 for p, l in zip(predictions, labels) if p and not l)
    fn = sum(1 for p, l in zip(predictions, labels) if not p and l)
    tn = sum(1 for p, l in zip(predictions, labels) if not p and not l)
    n = len(labels)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return ERMetrics(
        accuracy=(tp + tn) / n if n else 0.0,
        precision=precision,
        recall=recall,
        f1=f1,
        n=n,
    )


class EntityResolver:
    """Prompt-based entity matching with optional few-shot examples."""

    def __init__(
        self,
        client: CompletionProvider,
        examples: Sequence[Tuple[str, str, bool]] = (),
        model: Optional[str] = None,
    ) -> None:
        self.client = client
        self.examples = list(examples)
        self.model = model

    def resolve(self, a: str, b: str) -> bool:
        """Is (a, b) the same real-world entity, per the LLM?"""
        prompt = entity_match_prompt(a, b, self.examples)
        completion = self.client.complete(prompt, model=self.model)
        return completion.text.strip().lower().startswith("yes")

    def evaluate(self, pairs: Sequence[ERPair]) -> ERMetrics:
        predictions = [self.resolve(p.a, p.b) for p in pairs]
        return _metrics(predictions, [p.label for p in pairs])

    def evaluate_by_hardness(self, pairs: Sequence[ERPair]) -> Dict[str, ERMetrics]:
        """Stratify metrics by the generator's hardness tag."""
        out: Dict[str, ERMetrics] = {}
        for hardness in sorted({p.hardness for p in pairs}):
            subset = [p for p in pairs if p.hardness == hardness]
            predictions = [self.resolve(p.a, p.b) for p in subset]
            out[hardness] = _metrics(predictions, [p.label for p in subset])
        return out


def similarity_baseline(pairs: Sequence[ERPair], threshold: float = 0.52) -> ERMetrics:
    """Classical baseline: threshold on normalized string similarity."""
    predictions = [record_similarity(p.a, p.b) >= threshold for p in pairs]
    return _metrics(predictions, [p.label for p in pairs])
