"""LLM for data integration (Section II-C)."""

from repro.apps.integrate.entity_resolution import EntityResolver, similarity_baseline
from repro.apps.integrate.schema_matching import SchemaMatcher
from repro.apps.integrate.column_typing import ColumnTypeAnnotator
from repro.apps.integrate.cleaning import DataCleaner
from repro.apps.integrate.understand import TableUnderstanding

__all__ = [
    "ColumnTypeAnnotator",
    "DataCleaner",
    "EntityResolver",
    "SchemaMatcher",
    "TableUnderstanding",
    "similarity_baseline",
]
