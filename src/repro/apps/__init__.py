"""repro.apps — the paper's Section II application catalog.

* :mod:`repro.apps.datagen` — LLM for data generation (II-A): SQL
  generation, training-data generation, missing-label annotation,
  synthetic tabular data.
* :mod:`repro.apps.transform` — LLM for data transformation (II-B):
  NL2SQL, NL2Transaction, table restructuring, column transformations,
  data-preparation pipelines.
* :mod:`repro.apps.integrate` — LLM for data integration (II-C): entity
  resolution, schema matching, column type annotation, data cleaning,
  table understanding.
* :mod:`repro.apps.explore` — LLM for data exploration (II-D): multi-modal
  data lake management, LLM-as-database.
* :mod:`repro.apps.runner` — the checkpointed batch-pipeline runner:
  multi-row enrichment/transform jobs journal each finished row to a durable
  directory and resume from the last checkpoint instead of restarting.
"""

from repro.apps.runner import CheckpointedRunner, RowResult, RunReport, workload_fingerprint

__all__ = ["CheckpointedRunner", "RowResult", "RunReport", "workload_fingerprint"]
