"""repro.apps — the paper's Section II application catalog.

* :mod:`repro.apps.datagen` — LLM for data generation (II-A): SQL
  generation, training-data generation, missing-label annotation,
  synthetic tabular data.
* :mod:`repro.apps.transform` — LLM for data transformation (II-B):
  NL2SQL, NL2Transaction, table restructuring, column transformations,
  data-preparation pipelines.
* :mod:`repro.apps.integrate` — LLM for data integration (II-C): entity
  resolution, schema matching, column type annotation, data cleaning,
  table understanding.
* :mod:`repro.apps.explore` — LLM for data exploration (II-D): multi-modal
  data lake management, LLM-as-database.
"""
