"""Grid: a rectangular cell matrix, the raw form of spreadsheet tables."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Grid:
    """An immutable-ish rectangular grid of cells (None = empty cell).

    A grid may or may not have a designated header row; relationalization
    (``PromoteHeader``) establishes one. Cells are arbitrary scalars.
    """

    def __init__(
        self,
        cells: Sequence[Sequence[object]],
        header: Optional[List[str]] = None,
    ) -> None:
        rows = [list(row) for row in cells]
        width = max((len(r) for r in rows), default=0)
        for row in rows:
            row.extend([None] * (width - len(row)))
        self.cells: List[List[object]] = rows
        self.header = list(header) if header is not None else None
        if self.header is not None and len(self.header) != width and width != 0:
            raise ValueError(
                f"header width {len(self.header)} != grid width {width}"
            )

    # -- shape ----------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self.cells)

    @property
    def n_cols(self) -> int:
        return len(self.cells[0]) if self.cells else (len(self.header) if self.header else 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return self.cells == other.cells and self.header == other.header

    def __repr__(self) -> str:
        return f"Grid({self.n_rows}x{self.n_cols}, header={self.header is not None})"

    # -- accessors --------------------------------------------------------

    def row(self, i: int) -> List[object]:
        return list(self.cells[i])

    def column(self, j: int) -> List[object]:
        return [row[j] for row in self.cells]

    def copy(self) -> "Grid":
        return Grid([list(r) for r in self.cells], header=list(self.header) if self.header else None)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Pipe-separated rendering (matches the LLM engines' table format)."""
        lines = []
        if self.header is not None:
            lines.append(" | ".join(str(h) for h in self.header))
        for row in self.cells:
            lines.append(" | ".join("" if c is None else str(c) for c in row))
        return "\n".join(lines)

    @classmethod
    def from_render(cls, text: str, has_header: bool = True) -> "Grid":
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        if not lines:
            return cls([], header=[] if has_header else None)
        parsed = [[c.strip() or None for c in ln.split("|")] for ln in lines]
        if has_header:
            header = [str(h) for h in parsed[0]]
            return cls(parsed[1:], header=header)
        return cls(parsed)

    def to_records(self) -> List[dict]:
        """Rows as dicts (requires a header)."""
        if self.header is None:
            raise ValueError("grid has no header; apply PromoteHeader first")
        return [dict(zip(self.header, row)) for row in self.cells]


def cell_f1(predicted: Grid, gold: Grid) -> float:
    """Cell-level F1 between two grids (bag-of-cells with coordinates).

    The metric used by the Fig 4 transformation bench: a predicted cell
    counts as correct when the same (header, value) pair appears in the gold
    table (coordinates ignored so row order does not matter).
    """

    def bag(grid: Grid) -> List[Tuple[object, object]]:
        if grid.header is not None:
            return [
                (str(h), "" if c is None else str(c))
                for row in grid.cells
                for h, c in zip(grid.header, row)
            ]
        return [
            (j, "" if c is None else str(c))
            for row in grid.cells
            for j, c in enumerate(row)
        ]

    predicted_bag = bag(predicted)
    gold_bag = bag(gold)
    if not predicted_bag and not gold_bag:
        return 1.0
    if not predicted_bag or not gold_bag:
        return 0.0
    gold_remaining = list(gold_bag)
    hits = 0
    for cell in predicted_bag:
        if cell in gold_remaining:
            gold_remaining.remove(cell)
            hits += 1
    precision = hits / len(predicted_bag)
    recall = hits / len(gold_bag)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
