"""Table-restructuring operators (the Auto-Tables-style vocabulary).

Each operator transforms a :class:`~repro.tablekit.grid.Grid`. Programs are
sequences of operators; :func:`parse_program` reads the textual form the LLM
codegen engine emits (e.g. ``promote_header; unpivot(1)``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Type

from repro.errors import TransformError
from repro.tablekit.grid import Grid


class Operator:
    """Base class; subclasses implement :meth:`apply` and define ``name``."""

    name = "op"

    def apply(self, grid: Grid) -> Grid:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Operator) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


class Transpose(Operator):
    """Swap rows and columns (drops any header)."""

    name = "transpose"

    def apply(self, grid: Grid) -> Grid:
        cells = grid.cells
        if grid.header is not None:
            cells = [list(grid.header)] + cells
        transposed = [list(col) for col in zip(*cells)] if cells else []
        return Grid(transposed)


class PromoteHeader(Operator):
    """Use the first data row as the header row."""

    name = "promote_header"

    def apply(self, grid: Grid) -> Grid:
        if grid.header is not None:
            raise TransformError("grid already has a header")
        if grid.n_rows == 0:
            raise TransformError("cannot promote header of an empty grid")
        header = ["" if c is None else str(c) for c in grid.cells[0]]
        if any(not h for h in header):
            raise TransformError("header row contains empty cells")
        return Grid(grid.cells[1:], header=header)


class DeleteEmptyRows(Operator):
    """Remove rows whose cells are all empty."""

    name = "delete_empty_rows"

    def apply(self, grid: Grid) -> Grid:
        rows = [r for r in grid.cells if any(c not in (None, "") for c in r)]
        return Grid(rows, header=grid.header)


class DeleteEmptyColumns(Operator):
    """Remove columns whose cells are all empty (headers kept in sync)."""

    name = "delete_empty_cols"

    def apply(self, grid: Grid) -> Grid:
        if grid.n_cols == 0:
            return grid.copy()
        keep = [
            j
            for j in range(grid.n_cols)
            if any(row[j] not in (None, "") for row in grid.cells)
            or (grid.header is not None and j < len(grid.header) and grid.header[j])
        ]
        cells = [[row[j] for j in keep] for row in grid.cells]
        header = [grid.header[j] for j in keep] if grid.header is not None else None
        return Grid(cells, header=header)


class FillDown(Operator):
    """Fill empty cells with the value above (un-merges grouped cells)."""

    name = "fill_down"

    def apply(self, grid: Grid) -> Grid:
        cells = [list(r) for r in grid.cells]
        for j in range(grid.n_cols):
            last: object = None
            for i in range(len(cells)):
                if cells[i][j] in (None, ""):
                    cells[i][j] = last
                else:
                    last = cells[i][j]
        return Grid(cells, header=grid.header)


class Unpivot(Operator):
    """Wide → long: keep the first ``n_id`` columns as ids, melt the rest
    into (variable, value) pairs."""

    name = "unpivot"

    def __init__(self, n_id: int = 1) -> None:
        if n_id < 1:
            raise TransformError("unpivot requires at least one id column")
        self.n_id = n_id

    def __str__(self) -> str:
        return f"unpivot({self.n_id})"

    def apply(self, grid: Grid) -> Grid:
        if grid.header is None:
            raise TransformError("unpivot requires a header")
        if grid.n_cols <= self.n_id:
            raise TransformError("nothing to unpivot")
        id_names = grid.header[: self.n_id]
        var_names = grid.header[self.n_id :]
        rows: List[List[object]] = []
        for row in grid.cells:
            ids = row[: self.n_id]
            for name, value in zip(var_names, row[self.n_id :]):
                if value in (None, ""):
                    continue
                rows.append(list(ids) + [name, value])
        return Grid(rows, header=id_names + ["variable", "value"])


class Pivot(Operator):
    """Long → wide: spread (variable, value) pairs back into columns."""

    name = "pivot"

    def apply(self, grid: Grid) -> Grid:
        if grid.header is None or grid.n_cols < 3:
            raise TransformError("pivot requires a header and >= 3 columns")
        id_names = grid.header[:-2]
        variables: List[str] = []
        groups: Dict[tuple, Dict[str, object]] = {}
        order: List[tuple] = []
        for row in grid.cells:
            key = tuple(row[: len(id_names)])
            variable = str(row[-2])
            value = row[-1]
            if key not in groups:
                groups[key] = {}
                order.append(key)
            groups[key][variable] = value
            if variable not in variables:
                variables.append(variable)
        rows = [[*key, *(groups[key].get(v) for v in variables)] for key in order]
        return Grid(rows, header=id_names + variables)


OPERATORS: Dict[str, Type[Operator]] = {
    Transpose.name: Transpose,
    PromoteHeader.name: PromoteHeader,
    DeleteEmptyRows.name: DeleteEmptyRows,
    DeleteEmptyColumns.name: DeleteEmptyColumns,
    FillDown.name: FillDown,
    Unpivot.name: Unpivot,
    Pivot.name: Pivot,
}

_CALL_RE = re.compile(r"^(\w+)(?:\((\d*)\))?$")


def parse_program(text: str) -> List[Operator]:
    """Parse ``"op1; op2(arg)"`` into operator instances."""
    program: List[Operator] = []
    for piece in text.split(";"):
        piece = piece.strip()
        if not piece:
            continue
        m = _CALL_RE.match(piece)
        if m is None or m.group(1) not in OPERATORS:
            raise TransformError(f"unknown operator: {piece!r}")
        cls = OPERATORS[m.group(1)]
        if m.group(2):
            program.append(cls(int(m.group(2))))  # type: ignore[call-arg]
        else:
            program.append(cls())
    return program


def apply_program(grid: Grid, program: Sequence[Operator]) -> Grid:
    """Apply a sequence of operators, raising on the first failure."""
    current = grid
    for op in program:
        current = op.apply(current)
    return current
