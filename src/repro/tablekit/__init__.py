"""repro.tablekit — grid tables and restructuring operators.

The paper's "Transformation for Tables" application (Section II-B2, Fig 4)
relies on a vocabulary of table-restructuring operators (transpose, pivot,
explode, ...; the Auto-Tables operator set of ref [30]). This substrate
provides:

* :class:`Grid` — a rectangular cell grid (what a spreadsheet looks like
  before it is relational);
* the operator vocabulary (:mod:`repro.tablekit.ops`);
* :func:`synthesize_program` — search for the operator sequence that
  relationalizes a grid (:mod:`repro.tablekit.synthesis`).

Both the simulated LLM's codegen engine and the
:mod:`repro.apps.transform.tables` application call into this module, so the
"LLM generates the operator sequence" story and the direct API agree.
"""

from repro.tablekit.grid import Grid
from repro.tablekit.ops import (
    OPERATORS,
    DeleteEmptyColumns,
    DeleteEmptyRows,
    FillDown,
    Operator,
    PromoteHeader,
    Transpose,
    Unpivot,
    apply_program,
    parse_program,
)
from repro.tablekit.synthesis import relational_score, synthesize_program

__all__ = [
    "DeleteEmptyColumns",
    "DeleteEmptyRows",
    "FillDown",
    "Grid",
    "OPERATORS",
    "Operator",
    "PromoteHeader",
    "Transpose",
    "Unpivot",
    "apply_program",
    "parse_program",
    "relational_score",
    "synthesize_program",
]
