"""Operator-program synthesis: find the sequence that relationalizes a grid.

A breadth-limited beam search over operator sequences, scored by
:func:`relational_score` — a heuristic measure of "how relational" a grid
looks (has a header, no empty cells, type-consistent columns, no obviously
transposed shape). This is the algorithm behind both the LLM codegen
engine's "generate the operator sequence" answers and the direct
:mod:`repro.apps.transform.tables` API.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import TransformError
from repro.tablekit.grid import Grid
from repro.tablekit.ops import (
    DeleteEmptyColumns,
    DeleteEmptyRows,
    FillDown,
    Operator,
    Pivot,
    PromoteHeader,
    Transpose,
    Unpivot,
    apply_program,
)


def _type_of(cell: object) -> str:
    if cell in (None, ""):
        return "empty"
    text = str(cell)
    try:
        float(text)
        return "number"
    except ValueError:
        return "text"


def relational_score(grid: Grid) -> float:
    """Score in [0, 1]: how much the grid looks like a relational table.

    Components: has a header (0.3), non-empty cells (0.25), per-column type
    consistency (0.3), more rows than columns — data tables are tall (0.15).
    """
    if grid.n_rows == 0 or grid.n_cols == 0:
        return 0.0
    score = 0.0
    if grid.header is not None and all(grid.header):
        score += 0.3
    total_cells = grid.n_rows * grid.n_cols
    filled = sum(1 for row in grid.cells for c in row if c not in (None, ""))
    score += 0.25 * (filled / total_cells)
    consistency = 0.0
    for j in range(grid.n_cols):
        types = [_type_of(row[j]) for row in grid.cells if row[j] not in (None, "")]
        if not types:
            continue
        majority = max(set(types), key=types.count)
        consistency += types.count(majority) / len(types)
    score += 0.3 * (consistency / grid.n_cols)
    if grid.n_rows >= grid.n_cols:
        score += 0.15
    return round(score, 6)


def _candidate_ops(grid: Grid) -> List[Operator]:
    """Operators plausibly applicable to the grid in its current state."""
    ops: List[Operator] = []
    if grid.header is None:
        ops.append(PromoteHeader())
        ops.append(Transpose())
    ops.append(DeleteEmptyRows())
    ops.append(DeleteEmptyColumns())
    if any(c in (None, "") for row in grid.cells for c in row):
        ops.append(FillDown())
    if grid.header is not None and grid.n_cols >= 3:
        for n_id in (1, 2):
            if grid.n_cols > n_id:
                ops.append(Unpivot(n_id))
        ops.append(Pivot())
    return ops


def synthesize_program(
    grid: Grid,
    target: Optional[Grid] = None,
    max_steps: int = 4,
    beam_width: int = 6,
) -> Tuple[List[Operator], Grid, float]:
    """Search for an operator program that relationalizes ``grid``.

    When ``target`` is provided, exact match with the target terminates the
    search with score 1.0 (programming-by-example mode); otherwise the
    heuristic :func:`relational_score` drives the beam.

    Returns ``(program, result_grid, score)``.
    """

    def evaluate(candidate: Grid) -> float:
        if target is not None:
            return 1.0 if candidate == target else min(relational_score(candidate), 0.99)
        return relational_score(candidate)

    def state_key(candidate: Grid) -> str:
        # The render of a promoted grid can equal the headerless render, so
        # header presence must be part of the dedup key.
        prefix = "H" if candidate.header is not None else "N"
        return prefix + "\x00" + candidate.render()

    start_score = evaluate(grid)
    beam: List[Tuple[float, List[Operator], Grid]] = [(start_score, [], grid)]
    best = beam[0]
    seen = {state_key(grid)}

    for _step in range(max_steps):
        expansions: List[Tuple[float, List[Operator], Grid]] = []
        for score, program, current in beam:
            for op in _candidate_ops(current):
                try:
                    nxt = op.apply(current)
                except TransformError:
                    continue
                key = state_key(nxt)
                if key in seen:
                    continue
                seen.add(key)
                nxt_score = evaluate(nxt)
                expansions.append((nxt_score, program + [op], nxt))
        if not expansions:
            break
        expansions.sort(key=lambda t: (-t[0], len(t[1])))
        beam = expansions[:beam_width]
        if beam[0][0] > best[0]:
            best = beam[0]
        if best[0] >= 1.0:
            break

    score, program, result = best
    return program, result, score


def program_to_text(program: Sequence[Operator]) -> str:
    """Render a program in the textual form :func:`parse_program` accepts."""
    return "; ".join(str(op) for op in program)


def replay(grid: Grid, program_text: str) -> Grid:
    """Parse and apply a textual program (LLM output path)."""
    from repro.tablekit.ops import parse_program

    return apply_program(grid, parse_program(program_text))
