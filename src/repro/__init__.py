"""repro — LLMs for data management (reproduction of Zhang et al., ICDE 2024).

Subpackages:

* :mod:`repro.sqldb` — in-memory relational DBMS (from scratch);
* :mod:`repro.vectordb` — vector database with hybrid attribute filtering;
* :mod:`repro.tablekit` — grid tables and restructuring operators;
* :mod:`repro.llm` — the deterministic simulated LLM service;
* :mod:`repro.datasets` — synthetic dataset generators;
* :mod:`repro.core` — the paper's Section III contributions (prompts,
  cascade, decomposition, cache, hybrid planning, privacy, validation);
* :mod:`repro.apps` — the Section II application catalog;
* :mod:`repro.bench` — the experiment harness (``python -m repro.bench``).

See README.md for the tour and DESIGN.md / EXPERIMENTS.md for the
reproduction methodology and results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
