"""Attribute (metadata) filters for hybrid vector + attribute search.

The paper (Section III-B2) highlights *attribute filtering* — combining
vector similarity with structured predicates ("entity type = professor") —
as a key challenge. :class:`MetadataFilter` is the predicate language used by
:class:`repro.vectordb.Collection`.

Filter specs are plain dictionaries:

* ``{"kind": "text"}`` — equality;
* ``{"year": {"gte": 2000, "lt": 2015}}`` — range operators
  (``eq, ne, lt, lte, gt, gte``);
* ``{"tag": {"in": ["a", "b"]}}`` — membership;
* ``{"title": {"contains": "jordan"}}`` — case-insensitive substring.

Multiple keys are AND-ed together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "eq": lambda v, t: v == t,
    "ne": lambda v, t: v != t,
    "lt": lambda v, t: v is not None and v < t,          # type: ignore[operator]
    "lte": lambda v, t: v is not None and v <= t,        # type: ignore[operator]
    "gt": lambda v, t: v is not None and v > t,          # type: ignore[operator]
    "gte": lambda v, t: v is not None and v >= t,        # type: ignore[operator]
    "in": lambda v, t: v in t,                           # type: ignore[operator]
    "contains": lambda v, t: isinstance(v, str) and str(t).lower() in v.lower(),
}


@dataclass(frozen=True)
class _Condition:
    field: str
    op: str
    target: object

    def matches(self, metadata: Mapping[str, object]) -> bool:
        """True when the condition holds for the metadata record."""
        if self.field not in metadata:
            return False
        return _OPERATORS[self.op](metadata[self.field], self.target)


class MetadataFilter:
    """A compiled conjunction of attribute predicates."""

    def __init__(self, spec: Optional[Mapping[str, object]] = None) -> None:
        self.spec = dict(spec or {})
        self._conditions: List[_Condition] = []
        for field, value in self.spec.items():
            if isinstance(value, Mapping):
                for op, target in value.items():
                    if op not in _OPERATORS:
                        raise ValueError(f"unknown filter operator {op!r} for field {field!r}")
                    self._conditions.append(_Condition(field=field, op=op, target=target))
            else:
                self._conditions.append(_Condition(field=field, op="eq", target=value))

    def __bool__(self) -> bool:
        return bool(self._conditions)

    def __len__(self) -> int:
        return len(self._conditions)

    def matches(self, metadata: Optional[Mapping[str, object]]) -> bool:
        """True when all conditions hold for ``metadata``."""
        if metadata is None:
            metadata = {}
        return all(c.matches(metadata) for c in self._conditions)

    def selectivity(self, metadatas: List[Optional[Mapping[str, object]]]) -> float:
        """Fraction of the given metadata records that pass (1.0 when empty)."""
        if not metadatas:
            return 1.0
        passed = sum(1 for m in metadatas if self.matches(m))
        return passed / len(metadatas)

    def __repr__(self) -> str:
        return f"MetadataFilter({self.spec!r})"
