"""Distance metrics for the vector database.

All search APIs in :mod:`repro.vectordb` return *similarity scores* where
larger is better, regardless of the underlying metric, so callers never need
to branch on metric direction.
"""

from __future__ import annotations

import enum

import numpy as np


class Metric(enum.Enum):
    """Supported similarity metrics."""

    COSINE = "cosine"
    L2 = "l2"
    DOT = "dot"


def similarity_matrix(query: np.ndarray, vectors: np.ndarray, metric: Metric) -> np.ndarray:
    """Similarity of ``query`` (dim,) against ``vectors`` (n, dim).

    Returns an (n,) float64 array where larger means more similar.
    L2 distances are negated so that the "larger is better" convention holds.
    """
    if vectors.size == 0:
        return np.zeros(0, dtype=np.float64)
    query = query.astype(np.float64, copy=False)
    vectors = vectors.astype(np.float64, copy=False)
    if metric is Metric.COSINE:
        qn = np.linalg.norm(query)
        vn = np.linalg.norm(vectors, axis=1)
        denom = qn * vn
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = np.where(denom > 0, vectors @ query / np.where(denom == 0, 1.0, denom), 0.0)
        return sims
    if metric is Metric.DOT:
        return vectors @ query
    # L2: negative distance.
    diffs = vectors - query[None, :]
    return -np.sqrt(np.sum(diffs * diffs, axis=1))


def pairwise_similarity(a: np.ndarray, b: np.ndarray, metric: Metric) -> float:
    """Similarity between two single vectors under ``metric``."""
    return float(similarity_matrix(a, b[None, :], metric)[0])


def scalar_similarity(a: np.ndarray, b: np.ndarray, metric: Metric) -> float:
    """Similarity of two single vectors using scalar (non-batched) numpy ops.

    Bit-identical to what a pure-Python linear scan computes per pair —
    e.g. :func:`repro._util.cosine` for :attr:`Metric.COSINE` — whereas
    batched BLAS reductions (:func:`similarity_matrix`) may differ in the
    last ulp. The exact top-1 refinement in
    :meth:`~repro.vectordb.FlatIndex.search_top1` relies on this parity.
    """
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if metric is Metric.COSINE:
        na = float(np.linalg.norm(a))
        nb = float(np.linalg.norm(b))
        if na == 0.0 or nb == 0.0:
            return 0.0
        return float(np.dot(a, b) / (na * nb))
    if metric is Metric.DOT:
        return float(np.dot(a, b))
    return -float(np.linalg.norm(a - b))
