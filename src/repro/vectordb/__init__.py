"""repro.vectordb — a from-scratch vector database.

The paper leans on vector databases in three places: storing historical
prompts for prompt selection (Section III-A), the semantic LLM cache
(Section III-C), and multi-modal data lake querying with attribute filtering
(Sections II-D1 and III-B2). This subpackage provides the storage and index
layer all three build on:

* :class:`FlatIndex` — exact brute-force search (the recall reference);
* :class:`ExactIVFIndex` — cluster-pruned search that is still exact
  (triangle-inequality bounds, never a recall trade-off) — what
  :func:`auto_index` picks above ~50k entries;
* :class:`IVFIndex` — inverted-file index with k-means coarse quantizer;
* :class:`HNSWIndex` — hierarchical navigable small-world graph;
* :class:`Collection` — vectors + metadata with pre-/post-/adaptive
  attribute filtering, the "hybrid search" the paper discusses.

>>> import numpy as np
>>> from repro.vectordb import Collection
>>> c = Collection(dim=4)
>>> c.add("a", np.array([1.0, 0, 0, 0]), metadata={"kind": "text"})
>>> c.add("b", np.array([0, 1.0, 0, 0]), metadata={"kind": "table"})
>>> [hit.id for hit in c.search(np.array([1.0, 0, 0, 0]), k=1)]
['a']
"""

from repro.vectordb.collection import Collection, FilterStrategy, SearchHit, SearchReport
from repro.vectordb.distance import Metric
from repro.vectordb.filters import MetadataFilter
from repro.vectordb.index_flat import FlatIndex
from repro.vectordb.index_hnsw import HNSWIndex
from repro.vectordb.index_ivf import IVFIndex
from repro.vectordb.index_ivf_exact import ExactIVFIndex
from repro.vectordb.partition import PartitionSpec
from repro.vectordb.tuning import (
    FLAT_MAX_ENTRIES,
    TuningResult,
    auto_index,
    measure_recall,
    tune_ef_search,
    tune_nprobe,
)

__all__ = [
    "Collection",
    "ExactIVFIndex",
    "FLAT_MAX_ENTRIES",
    "FilterStrategy",
    "FlatIndex",
    "HNSWIndex",
    "IVFIndex",
    "Metric",
    "MetadataFilter",
    "PartitionSpec",
    "SearchHit",
    "SearchReport",
    "TuningResult",
    "auto_index",
    "measure_recall",
    "tune_ef_search",
    "tune_nprobe",
]
