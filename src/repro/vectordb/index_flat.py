"""Exact brute-force vector index — the recall reference for ANN indexes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CollectionError, DimensionMismatchError
from repro.vectordb.distance import Metric, scalar_similarity, similarity_matrix

# Batched BLAS reductions agree with scalar per-pair similarities to far
# better than this; rows ranking within the band of the batched maximum are
# re-scored scalar-exactly by search_top1(refine_exact=True).
REFINE_BAND = 1e-9


class FlatIndex:
    """Stores vectors in a dense matrix; search is an exact linear scan.

    Deletion is lazy (tombstones) with periodic compaction so that ids stay
    stable for the :class:`~repro.vectordb.Collection` layer. The backing
    matrix grows by capacity doubling, so ``add`` is amortized O(1) instead
    of the O(n) reallocation a naive ``vstack`` per insert would cost; row
    norms are cached at insert time so cosine search never re-reduces the
    stored matrix.
    """

    def __init__(self, dim: int, metric: Metric = Metric.COSINE) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._buf = np.zeros((0, dim), dtype=np.float64)
        self._norms_buf = np.zeros(0, dtype=np.float64)
        self._live_buf = np.zeros(0, dtype=bool)
        self._size = 0  # rows of _buf in use
        self._ids: List[str] = []
        self._live: Dict[str, int] = {}
        self._tombstones = 0

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, vector_id: str) -> bool:
        return vector_id in self._live

    # Dense view of the used rows — everything below searches this.
    @property
    def _matrix(self) -> np.ndarray:
        return self._buf[: self._size]

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"expected dim {self.dim}, got {vector.shape[0]}"
            )
        return vector

    def _grow_to(self, rows: int) -> None:
        capacity = self._buf.shape[0]
        if rows <= capacity:
            return
        new_capacity = max(8, capacity * 2, rows)
        buf = np.zeros((new_capacity, self.dim), dtype=np.float64)
        buf[: self._size] = self._buf[: self._size]
        self._buf = buf
        norms = np.zeros(new_capacity, dtype=np.float64)
        norms[: self._size] = self._norms_buf[: self._size]
        self._norms_buf = norms
        live = np.zeros(new_capacity, dtype=bool)
        live[: self._size] = self._live_buf[: self._size]
        self._live_buf = live

    def add(self, vector_id: str, vector: np.ndarray) -> None:
        """Insert one vector under a unique id (amortized O(1))."""
        if vector_id in self._live:
            raise CollectionError(f"duplicate vector id: {vector_id!r}")
        vector = self._check(vector)
        row = self._size
        self._grow_to(row + 1)
        self._buf[row] = vector
        # 1-D norm (BLAS ddot path) — matches the scalar per-pair math.
        self._norms_buf[row] = float(np.linalg.norm(self._buf[row]))
        self._live_buf[row] = True
        self._size = row + 1
        self._ids.append(vector_id)
        self._live[vector_id] = row

    def remove(self, vector_id: str) -> None:
        """Delete a vector by id; raises on unknown ids."""
        if vector_id not in self._live:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        self._live_buf[self._live[vector_id]] = False
        del self._live[vector_id]
        self._tombstones += 1
        if self._tombstones > max(32, len(self._live)):
            self._compact()

    def _compact(self) -> None:
        keep = sorted(self._live.items(), key=lambda kv: kv[1])
        rows = [idx for _vid, idx in keep]
        self._buf = self._buf[rows] if rows else np.zeros((0, self.dim), dtype=np.float64)
        self._norms_buf = self._norms_buf[rows] if rows else np.zeros(0, dtype=np.float64)
        self._live_buf = np.ones(len(rows), dtype=bool)
        self._size = len(rows)
        self._ids = [vid for vid, _idx in keep]
        self._live = {vid: i for i, vid in enumerate(self._ids)}
        self._tombstones = 0

    def get(self, vector_id: str) -> np.ndarray:
        """Return a copy of the stored vector."""
        if vector_id not in self._live:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        return self._buf[self._live[vector_id]].copy()

    def _scores(self, query: np.ndarray) -> np.ndarray:
        """Similarity of ``query`` against every used row, dead rows -inf.

        One matrix reduction over the dense buffer — no per-row Python work.
        """
        matrix = self._matrix
        if self.metric is Metric.COSINE:
            qn = float(np.linalg.norm(query))
            denom = self._norms_buf[: self._size] * qn
            dots = matrix @ query
            sims = np.divide(dots, denom, out=np.zeros_like(dots), where=denom > 0)
        else:
            sims = similarity_matrix(query, matrix, self.metric)
        if self._tombstones:
            sims = np.where(self._live_buf[: self._size], sims, -np.inf)
        return sims

    def search_top1(
        self, query: np.ndarray, refine_exact: bool = False
    ) -> Optional[Tuple[str, float]]:
        """The single most similar live vector, via one vectorized scan.

        This is the incremental hot-path API: callers that only ever need
        the best match (semantic cache probes, admission checks) skip the
        candidate-list build and argsort of :meth:`search`.

        With ``refine_exact=True``, rows scoring within ``REFINE_BAND`` of
        the batched maximum are re-scored with
        :func:`~repro.vectordb.distance.scalar_similarity` and the winner is
        the first-inserted row with the strictly greatest scalar score —
        bit-identical (id *and* similarity) to a Python linear scan using
        scalar per-pair similarity, which batched BLAS alone is not.
        """
        if not self._live:
            return None
        query = self._check(query)
        sims = self._scores(query)
        best_row = int(np.argmax(sims))
        if not refine_exact:
            return self._ids[best_row], float(sims[best_row])
        band = np.flatnonzero(sims >= sims[best_row] - REFINE_BAND)
        best_sim = -np.inf
        winner = best_row
        for row in band:
            sim = scalar_similarity(query, self._buf[row], self.metric)
            if sim > best_sim:
                best_sim, winner = sim, int(row)
        return self._ids[winner], float(best_sim)

    def search(
        self,
        query: np.ndarray,
        k: int,
        allowed_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-k most similar live vectors; optionally restricted to
        ``allowed_ids`` (the pre-filtered candidate set)."""
        if k <= 0:
            return []
        query = self._check(query)
        if allowed_ids is not None:
            candidates = [(vid, self._live[vid]) for vid in allowed_ids if vid in self._live]
        else:
            candidates = list(self._live.items())
        if not candidates:
            return []
        rows = np.array([idx for _vid, idx in candidates])
        sims = similarity_matrix(query, self._matrix[rows], self.metric)
        order = np.argsort(-sims, kind="stable")[:k]
        return [(candidates[i][0], float(sims[i])) for i in order]

    def items(self) -> List[Tuple[str, np.ndarray]]:
        return [(vid, self._buf[idx].copy()) for vid, idx in self._live.items()]
