"""Exact brute-force vector index — the recall reference for ANN indexes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CollectionError, DimensionMismatchError
from repro.vectordb.distance import Metric, scalar_similarity, similarity_matrix

# Batched BLAS reductions agree with scalar per-pair similarities to far
# better than this; rows ranking within the band of the batched maximum are
# re-scored scalar-exactly by search_top1(refine_exact=True).
REFINE_BAND = 1e-9


class FlatIndex:
    """Stores vectors in a dense matrix; search is an exact linear scan.

    Deletion is lazy (tombstones) with periodic compaction so that ids stay
    stable for the :class:`~repro.vectordb.Collection` layer. The backing
    matrix grows by capacity doubling, so ``add`` is amortized O(1) instead
    of the O(n) reallocation a naive ``vstack`` per insert would cost.

    Inserts are **write-behind**: ``add`` only validates the vector and
    parks it in a pending buffer; the dense-matrix append — row copy, norm
    reduction, growth — happens lazily, for the whole buffer at once, the
    next time anything needs the matrix (a search, ``get``, ``items``,
    compaction). The flush is one block assignment plus one vectorized
    norm reduction over the pending block, so an insert-heavy phase costs
    a single amortized block operation instead of a per-insert matrix
    touch. Row order after a flush is exactly insertion order, so search
    results (including first-inserted tie-breaks) are identical to eager
    per-insert appends.
    """

    def __init__(self, dim: int, metric: Metric = Metric.COSINE) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._row_shape = (dim,)
        self._buf = np.zeros((0, dim), dtype=np.float64)
        self._norms_buf = np.zeros(0, dtype=np.float64)
        self._live_buf = np.zeros(0, dtype=bool)
        self._size = 0  # rows of _buf in use
        self._ids: List[str] = []
        self._live: Dict[str, int] = {}
        self._tombstones = 0
        # Write-behind insert buffer: id -> vector, in insertion order
        # (dicts preserve it). Ids here are NOT in _live/_ids yet.
        self._pending: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._live) + len(self._pending)

    def __contains__(self, vector_id: str) -> bool:
        return vector_id in self._live or vector_id in self._pending

    # Dense view of the used rows — everything below searches this.
    @property
    def _matrix(self) -> np.ndarray:
        return self._buf[: self._size]

    def _check(self, vector: np.ndarray) -> np.ndarray:
        if (
            type(vector) is np.ndarray
            and vector.ndim == 1
            and vector.shape[0] == self.dim
            and vector.dtype == np.float64
        ):
            return vector
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"expected dim {self.dim}, got {vector.shape[0]}"
            )
        return vector

    def _grow_to(self, rows: int) -> None:
        capacity = self._buf.shape[0]
        if rows <= capacity:
            return
        new_capacity = max(8, capacity * 2, rows)
        buf = np.zeros((new_capacity, self.dim), dtype=np.float64)
        buf[: self._size] = self._buf[: self._size]
        self._buf = buf
        norms = np.zeros(new_capacity, dtype=np.float64)
        norms[: self._size] = self._norms_buf[: self._size]
        self._norms_buf = norms
        live = np.zeros(new_capacity, dtype=bool)
        live[: self._size] = self._live_buf[: self._size]
        self._live_buf = live

    def add(self, vector_id: str, vector: np.ndarray) -> None:
        """Insert one vector under a unique id (amortized O(1)).

        The vector is parked in the write-behind buffer; the dense matrix
        absorbs it (with every other parked insert) on the next search.
        Non-float64 vectors are cast at flush time (the block assignment
        does it for free), so the hot path is a shape check + dict set."""
        if vector_id in self._live or vector_id in self._pending:
            raise CollectionError(f"duplicate vector id: {vector_id!r}")
        try:
            if vector.shape == self._row_shape:
                self._pending[vector_id] = vector
                return
        except AttributeError:
            pass
        self._pending[vector_id] = self._check(vector)

    def add_batch(self, ids: Sequence[str], vectors: np.ndarray) -> None:
        """Insert many vectors at once (one pending-buffer extension)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"expected (n, {self.dim}) matrix, got {vectors.shape}"
            )
        if len(ids) != vectors.shape[0]:
            raise CollectionError("ids and vectors length mismatch")
        for i, vector_id in enumerate(ids):
            if vector_id in self._live or vector_id in self._pending:
                raise CollectionError(f"duplicate vector id: {vector_id!r}")
            self._pending[vector_id] = vectors[i]

    def _flush_pending(self) -> None:
        """Absorb the write-behind buffer into the dense matrix.

        One growth check, one block assignment, one vectorized norm
        reduction — the amortized form of what eager per-insert appends
        used to pay row by row. The norm of each row is ``sqrt(row·row)``
        exactly as the per-row BLAS reduction computed it; any last-ulp
        difference between the block reduction and the scalar path is
        absorbed by the ``REFINE_BAND`` re-scoring in exact searches."""
        if not self._pending:
            return
        pending = self._pending
        self._pending = {}
        n = len(pending)
        row = self._size
        self._grow_to(row + n)
        if n == 1:
            (vector,) = pending.values()
            self._buf[row] = vector  # assignment casts to float64
            # 1-D norm (BLAS ddot path) — matches the scalar per-pair math.
            self._norms_buf[row] = float(np.linalg.norm(self._buf[row]))
        else:
            self._buf[row : row + n] = np.stack(list(pending.values()))
            block = self._buf[row : row + n]  # float64 view post-cast
            self._norms_buf[row : row + n] = np.sqrt(
                np.einsum("ij,ij->i", block, block)
            )
        self._live_buf[row : row + n] = True
        self._size = row + n
        for i, vector_id in enumerate(pending):
            self._ids.append(vector_id)
            self._live[vector_id] = row + i

    def flush(self) -> None:
        """Absorb any write-behind inserts into the dense matrix now.

        Searches do this automatically; public so whitebox consumers (and
        the semantic cache's own flush) can force a consistent view."""
        self._flush_pending()

    def remove(self, vector_id: str) -> None:
        """Delete a vector by id; raises on unknown ids."""
        if vector_id in self._pending:
            # Never reached the matrix: retract it from the buffer.
            del self._pending[vector_id]
            return
        if vector_id not in self._live:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        self._live_buf[self._live[vector_id]] = False
        del self._live[vector_id]
        self._tombstones += 1
        if self._tombstones > max(32, len(self._live)):
            self._compact()

    def _compact(self) -> None:
        self._flush_pending()
        keep = sorted(self._live.items(), key=lambda kv: kv[1])
        rows = [idx for _vid, idx in keep]
        self._buf = self._buf[rows] if rows else np.zeros((0, self.dim), dtype=np.float64)
        self._norms_buf = self._norms_buf[rows] if rows else np.zeros(0, dtype=np.float64)
        self._live_buf = np.ones(len(rows), dtype=bool)
        self._size = len(rows)
        self._ids = [vid for vid, _idx in keep]
        self._live = {vid: i for i, vid in enumerate(self._ids)}
        self._tombstones = 0

    def get(self, vector_id: str) -> np.ndarray:
        """Return a copy of the stored vector."""
        pending = self._pending.get(vector_id)
        if pending is not None:
            return np.array(pending, dtype=np.float64)
        if vector_id not in self._live:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        return self._buf[self._live[vector_id]].copy()

    def _scores(self, query: np.ndarray) -> np.ndarray:
        """Similarity of ``query`` against every used row, dead rows -inf.

        One matrix reduction over the dense buffer — no per-row Python work.
        """
        matrix = self._matrix
        if self.metric is Metric.COSINE:
            qn = float(np.linalg.norm(query))
            denom = self._norms_buf[: self._size] * qn
            dots = matrix @ query
            sims = np.divide(dots, denom, out=np.zeros_like(dots), where=denom > 0)
        else:
            sims = similarity_matrix(query, matrix, self.metric)
        if self._tombstones:
            sims = np.where(self._live_buf[: self._size], sims, -np.inf)
        return sims

    def search_top1(
        self, query: np.ndarray, refine_exact: bool = False
    ) -> Optional[Tuple[str, float]]:
        """The single most similar live vector, via one vectorized scan.

        This is the incremental hot-path API: callers that only ever need
        the best match (semantic cache probes, admission checks) skip the
        candidate-list build and argsort of :meth:`search`.

        With ``refine_exact=True``, rows scoring within ``REFINE_BAND`` of
        the batched maximum are re-scored with
        :func:`~repro.vectordb.distance.scalar_similarity` and the winner is
        the first-inserted row with the strictly greatest scalar score —
        bit-identical (id *and* similarity) to a Python linear scan using
        scalar per-pair similarity, which batched BLAS alone is not.
        """
        self._flush_pending()
        if not self._live:
            return None
        query = self._check(query)
        sims = self._scores(query)
        best_row = int(np.argmax(sims))
        if not refine_exact:
            return self._ids[best_row], float(sims[best_row])
        return self._refine_top1(query, sims, best_row)

    def _refine_top1(
        self, query: np.ndarray, sims: np.ndarray, best_row: int
    ) -> Tuple[str, float]:
        band = np.flatnonzero(sims >= sims[best_row] - REFINE_BAND)
        best_sim = -np.inf
        winner = best_row
        for row in band:
            sim = scalar_similarity(query, self._buf[row], self.metric)
            if sim > best_sim:
                best_sim, winner = sim, int(row)
        return self._ids[winner], float(best_sim)

    def search_top1_many(
        self, queries: np.ndarray, refine_exact: bool = False
    ) -> List[Optional[Tuple[str, float]]]:
        """:meth:`search_top1` for a whole query block in one gemm.

        ``queries`` is an (m, dim) matrix; the result is one entry per
        query row. The dense buffer is reduced once with a matrix-matrix
        product instead of m separate gemvs, then each query's winner is
        band-refined exactly as in :meth:`search_top1` — per-query results
        are identical to m sequential calls (no index mutation happens in
        between, and searches never mutate the index).
        """
        self._flush_pending()
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"expected (m, {self.dim}) matrix, got {queries.shape}"
            )
        if not self._live:
            return [None] * queries.shape[0]
        matrix = self._matrix
        if self.metric is Metric.COSINE:
            qn = np.linalg.norm(queries, axis=1)
            denom = self._norms_buf[: self._size][None, :] * qn[:, None]
            dots = queries @ matrix.T
            sims_all = np.divide(
                dots, denom, out=np.zeros_like(dots), where=denom > 0
            )
        else:
            sims_all = np.stack(
                [similarity_matrix(row, matrix, self.metric) for row in queries]
            )
        if self._tombstones:
            dead = ~self._live_buf[: self._size]
            sims_all[:, dead] = -np.inf
        out: List[Optional[Tuple[str, float]]] = []
        for m in range(queries.shape[0]):
            sims = sims_all[m]
            best_row = int(np.argmax(sims))
            if refine_exact:
                out.append(self._refine_top1(queries[m], sims, best_row))
            else:
                out.append((self._ids[best_row], float(sims[best_row])))
        return out

    def search(
        self,
        query: np.ndarray,
        k: int,
        allowed_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-k most similar live vectors; optionally restricted to
        ``allowed_ids`` (the pre-filtered candidate set)."""
        if k <= 0:
            return []
        self._flush_pending()
        query = self._check(query)
        if allowed_ids is not None:
            candidates = [(vid, self._live[vid]) for vid in allowed_ids if vid in self._live]
        else:
            candidates = list(self._live.items())
        if not candidates:
            return []
        rows = np.array([idx for _vid, idx in candidates])
        sims = similarity_matrix(query, self._matrix[rows], self.metric)
        order = np.argsort(-sims, kind="stable")[:k]
        return [(candidates[i][0], float(sims[i])) for i in order]

    def items(self) -> List[Tuple[str, np.ndarray]]:
        self._flush_pending()
        return [(vid, self._buf[idx].copy()) for vid, idx in self._live.items()]
