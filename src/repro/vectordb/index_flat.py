"""Exact brute-force vector index — the recall reference for ANN indexes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CollectionError, DimensionMismatchError
from repro.vectordb.distance import Metric, similarity_matrix


class FlatIndex:
    """Stores vectors in a dense matrix; search is an exact linear scan.

    Deletion is lazy (tombstones) with periodic compaction so that ids stay
    stable for the :class:`~repro.vectordb.Collection` layer.
    """

    def __init__(self, dim: int, metric: Metric = Metric.COSINE) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._matrix = np.zeros((0, dim), dtype=np.float64)
        self._ids: List[str] = []
        self._live: Dict[str, int] = {}
        self._tombstones = 0

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, vector_id: str) -> bool:
        return vector_id in self._live

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"expected dim {self.dim}, got {vector.shape[0]}"
            )
        return vector

    def add(self, vector_id: str, vector: np.ndarray) -> None:
        """Insert one vector under a unique id."""
        if vector_id in self._live:
            raise CollectionError(f"duplicate vector id: {vector_id!r}")
        vector = self._check(vector)
        self._matrix = np.vstack([self._matrix, vector[None, :]])
        self._ids.append(vector_id)
        self._live[vector_id] = len(self._ids) - 1

    def remove(self, vector_id: str) -> None:
        """Delete a vector by id; raises on unknown ids."""
        if vector_id not in self._live:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        del self._live[vector_id]
        self._tombstones += 1
        if self._tombstones > max(32, len(self._live)):
            self._compact()

    def _compact(self) -> None:
        keep = sorted(self._live.items(), key=lambda kv: kv[1])
        self._matrix = (
            self._matrix[[idx for _i, idx in keep], :]
            if keep
            else np.zeros((0, self.dim), dtype=np.float64)
        )
        self._ids = [vid for vid, _idx in keep]
        self._live = {vid: i for i, vid in enumerate(self._ids)}
        self._tombstones = 0

    def get(self, vector_id: str) -> np.ndarray:
        """Return a copy of the stored vector."""
        if vector_id not in self._live:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        return self._matrix[self._live[vector_id]].copy()

    def search(
        self,
        query: np.ndarray,
        k: int,
        allowed_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-k most similar live vectors; optionally restricted to
        ``allowed_ids`` (the pre-filtered candidate set)."""
        if k <= 0:
            return []
        query = self._check(query)
        if allowed_ids is not None:
            candidates = [(vid, self._live[vid]) for vid in allowed_ids if vid in self._live]
        else:
            candidates = list(self._live.items())
        if not candidates:
            return []
        rows = np.array([idx for _vid, idx in candidates])
        sims = similarity_matrix(query, self._matrix[rows], self.metric)
        order = np.argsort(-sims, kind="stable")[:k]
        return [(candidates[i][0], float(sims[i])) for i in order]

    def items(self) -> List[Tuple[str, np.ndarray]]:
        return [(vid, self._matrix[idx].copy()) for vid, idx in self._live.items()]
