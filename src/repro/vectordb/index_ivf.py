"""IVF (inverted file) approximate index with a k-means coarse quantizer.

Vectors are assigned to the nearest of ``nlist`` centroids; search probes the
``nprobe`` closest lists. Trading ``nprobe`` against recall is one of the
"knob tuning" opportunities the paper cites (Section III-B2, refs [72, 73]);
the ablation bench sweeps it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CollectionError, DimensionMismatchError
from repro.vectordb.distance import Metric, similarity_matrix


def kmeans(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator, iterations: int = 12
) -> np.ndarray:
    """Plain Lloyd's k-means; returns (n_clusters, dim) centroids.

    Deterministic given ``rng``. Empty clusters are re-seeded from the data.
    """
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    n_clusters = min(n_clusters, n)
    centroid_idx = rng.choice(n, size=n_clusters, replace=False)
    centroids = data[centroid_idx].copy()
    for _round in range(iterations):
        # Assign.
        dists = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assign = dists.argmin(axis=1)
        # Update.
        new_centroids = centroids.copy()
        for c in range(n_clusters):
            members = data[assign == c]
            if len(members):
                new_centroids[c] = members.mean(axis=0)
            else:
                new_centroids[c] = data[rng.integers(0, n)]
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    return centroids


class IVFIndex:
    """Inverted-file index. Train happens lazily on first search (or via
    :meth:`train`) once enough vectors are present."""

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.COSINE,
        nlist: int = 16,
        nprobe: int = 4,
        seed: int = 7,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self.nlist = max(1, nlist)
        self.nprobe = max(1, nprobe)
        self._rng = np.random.default_rng(seed)
        self._vectors: Dict[str, np.ndarray] = {}
        self._centroids: Optional[np.ndarray] = None
        self._lists: List[List[str]] = []
        self._assignment: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, vector_id: str) -> bool:
        return vector_id in self._vectors

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise DimensionMismatchError(f"expected dim {self.dim}, got {vector.shape[0]}")
        return vector

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def train(self) -> None:
        """(Re)build the coarse quantizer from current vectors."""
        if not self._vectors:
            raise CollectionError("cannot train IVF index with no vectors")
        data = np.stack(list(self._vectors.values()))
        self._centroids = kmeans(data, self.nlist, self._rng)
        self._lists = [[] for _ in range(len(self._centroids))]
        self._assignment = {}
        for vid, vec in self._vectors.items():
            self._assign(vid, vec)

    def _assign(self, vector_id: str, vector: np.ndarray) -> None:
        assert self._centroids is not None
        dists = ((self._centroids - vector[None, :]) ** 2).sum(axis=1)
        cluster = int(dists.argmin())
        self._lists[cluster].append(vector_id)
        self._assignment[vector_id] = cluster

    def add(self, vector_id: str, vector: np.ndarray) -> None:
        """Insert one vector under a unique id."""
        if vector_id in self._vectors:
            raise CollectionError(f"duplicate vector id: {vector_id!r}")
        vector = self._check(vector)
        self._vectors[vector_id] = vector
        if self._centroids is not None:
            self._assign(vector_id, vector)

    def remove(self, vector_id: str) -> None:
        """Delete a vector by id; raises on unknown ids."""
        if vector_id not in self._vectors:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        del self._vectors[vector_id]
        cluster = self._assignment.pop(vector_id, None)
        if cluster is not None:
            self._lists[cluster].remove(vector_id)

    def get(self, vector_id: str) -> np.ndarray:
        """Return a copy of the stored vector."""
        if vector_id not in self._vectors:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        return self._vectors[vector_id].copy()

    def search(
        self,
        query: np.ndarray,
        k: int,
        allowed_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-k approximate search over the nprobe closest lists."""
        if k <= 0 or not self._vectors:
            return []
        query = self._check(query)
        if not self.is_trained:
            self.train()
        assert self._centroids is not None
        centroid_d = ((self._centroids - query[None, :]) ** 2).sum(axis=1)
        probe_order = np.argsort(centroid_d)[: self.nprobe]
        candidate_ids: List[str] = []
        allowed = set(allowed_ids) if allowed_ids is not None else None
        for cluster in probe_order:
            for vid in self._lists[int(cluster)]:
                if allowed is None or vid in allowed:
                    candidate_ids.append(vid)
        if not candidate_ids:
            return []
        matrix = np.stack([self._vectors[vid] for vid in candidate_ids])
        sims = similarity_matrix(query, matrix, self.metric)
        order = np.argsort(-sims, kind="stable")[:k]
        return [(candidate_ids[i], float(sims[i])) for i in order]

    def items(self) -> List[Tuple[str, np.ndarray]]:
        return [(vid, vec.copy()) for vid, vec in self._vectors.items()]
