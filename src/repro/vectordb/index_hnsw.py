"""A compact HNSW (hierarchical navigable small world) graph index.

Implements the standard construction of Malkov & Yashunin: exponentially
distributed layer assignment, greedy descent through upper layers, and a
beam (``ef``) search at layer 0. Simplified relative to production HNSW:
neighbor selection is by plain similarity (no heuristic pruning diversity
step) and deletes rebuild lazily — sufficient for the recall/latency
ablation the paper motivates.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import CollectionError, DimensionMismatchError
from repro.vectordb.distance import Metric, pairwise_similarity


class HNSWIndex:
    """Hierarchical NSW graph with similarity-ordered neighbor lists."""

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.COSINE,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: int = 32,
        seed: int = 7,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self.m = max(2, m)
        self.ef_construction = max(self.m, ef_construction)
        self.ef_search = max(1, ef_search)
        self._rng = np.random.default_rng(seed)
        self._level_mult = 1.0 / math.log(self.m)
        self._vectors: Dict[str, np.ndarray] = {}
        # graph[level][id] -> neighbor ids
        self._graph: List[Dict[str, List[str]]] = []
        self._levels: Dict[str, int] = {}
        self._entry: Optional[str] = None

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, vector_id: str) -> bool:
        return vector_id in self._vectors

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise DimensionMismatchError(f"expected dim {self.dim}, got {vector.shape[0]}")
        return vector

    def _sim(self, a_id: str, query: np.ndarray) -> float:
        return pairwise_similarity(query, self._vectors[a_id], self.metric)

    def _random_level(self) -> int:
        u = float(self._rng.random())
        u = max(u, 1e-12)
        return int(-math.log(u) * self._level_mult)

    # -- construction ----------------------------------------------------

    def add(self, vector_id: str, vector: np.ndarray) -> None:
        """Insert one vector under a unique id."""
        if vector_id in self._vectors:
            raise CollectionError(f"duplicate vector id: {vector_id!r}")
        vector = self._check(vector)
        level = self._random_level()
        self._vectors[vector_id] = vector
        self._levels[vector_id] = level
        while len(self._graph) <= level:
            self._graph.append({})
        for lvl in range(level + 1):
            self._graph[lvl][vector_id] = []

        if self._entry is None:
            self._entry = vector_id
            return

        entry = self._entry
        top = self._levels[entry]
        # Greedy descent above the new node's level.
        for lvl in range(top, level, -1):
            entry = self._greedy_step(vector, entry, lvl)
        # Insert with beam search from its level down to 0.
        for lvl in range(min(level, top), -1, -1):
            candidates = self._search_layer(vector, [entry], lvl, self.ef_construction)
            neighbors = [vid for vid, _s in candidates[: self.m]]
            self._graph[lvl][vector_id] = list(neighbors)
            for nbr in neighbors:
                links = self._graph[lvl][nbr]
                links.append(vector_id)
                if len(links) > self.m * 2:
                    links.sort(
                        key=lambda other: -pairwise_similarity(
                            self._vectors[nbr], self._vectors[other], self.metric
                        )
                    )
                    del links[self.m * 2 :]
            if candidates:
                entry = candidates[0][0]
        if level > self._levels[self._entry]:
            self._entry = vector_id

    def _greedy_step(self, query: np.ndarray, entry: str, level: int) -> str:
        current = entry
        current_sim = self._sim(current, query)
        improved = True
        while improved:
            improved = False
            for nbr in self._graph[level].get(current, []):
                sim = self._sim(nbr, query)
                if sim > current_sim:
                    current, current_sim = nbr, sim
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entries: List[str], level: int, ef: int
    ) -> List[Tuple[str, float]]:
        """Beam search in one layer; returns candidates sorted by similarity."""
        visited: Set[str] = set(entries)
        # Max-heap on similarity via negation.
        candidates: List[Tuple[float, str]] = []
        results: List[Tuple[float, str]] = []  # min-heap of (sim, id)
        for e in entries:
            sim = self._sim(e, query)
            heapq.heappush(candidates, (-sim, e))
            heapq.heappush(results, (sim, e))
            if len(results) > ef:
                heapq.heappop(results)
        while candidates:
            neg_sim, current = heapq.heappop(candidates)
            worst = results[0][0] if results else -math.inf
            if -neg_sim < worst and len(results) >= ef:
                break
            for nbr in self._graph[level].get(current, []):
                if nbr in visited:
                    continue
                visited.add(nbr)
                sim = self._sim(nbr, query)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(candidates, (-sim, nbr))
                    heapq.heappush(results, (sim, nbr))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted(((vid, sim) for sim, vid in results), key=lambda t: -t[1])

    # -- removal / lookup -------------------------------------------------

    def remove(self, vector_id: str) -> None:
        """Delete a vector by id; raises on unknown ids."""
        if vector_id not in self._vectors:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        del self._vectors[vector_id]
        level = self._levels.pop(vector_id)
        for lvl in range(level + 1):
            self._graph[lvl].pop(vector_id, None)
        for layer in self._graph:
            for links in layer.values():
                if vector_id in links:
                    links.remove(vector_id)
        if self._entry == vector_id:
            self._entry = max(self._levels, key=self._levels.get) if self._levels else None

    def get(self, vector_id: str) -> np.ndarray:
        """Return a copy of the stored vector."""
        if vector_id not in self._vectors:
            raise CollectionError(f"unknown vector id: {vector_id!r}")
        return self._vectors[vector_id].copy()

    # -- search -----------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int,
        allowed_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-k approximate search: greedy descent + layer-0 beam."""
        if k <= 0 or self._entry is None:
            return []
        query = self._check(query)
        entry = self._entry
        for lvl in range(self._levels[entry], 0, -1):
            entry = self._greedy_step(query, entry, lvl)
        ef = max(self.ef_search, k)
        hits = self._search_layer(query, [entry], 0, ef)
        if allowed_ids is not None:
            allowed = set(allowed_ids)
            hits = [(vid, sim) for vid, sim in hits if vid in allowed]
        return hits[:k]

    def items(self) -> List[Tuple[str, np.ndarray]]:
        return [(vid, vec.copy()) for vid, vec in self._vectors.items()]
