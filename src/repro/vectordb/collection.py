"""The collection layer: vectors + metadata + payloads + hybrid search.

Implements the attribute-filtering strategies the paper discusses in
Section III-B2:

* ``PRE`` — evaluate the attribute filter first, then do (exact) vector
  search restricted to the survivors. Best when the filter is selective.
* ``POST`` — vector-search a widened ``k' = k * overfetch`` candidate set
  first, then apply the filter. Best when the filter passes most items, but
  can return fewer than ``k`` hits (the "null result" pathology the paper
  describes when ``k`` is too small).
* ``ADAPTIVE`` — estimate filter selectivity on a metadata sample and pick
  the order, widening ``k'`` by the estimated pass rate.

Every search returns a :class:`SearchReport` carrying the hits plus
diagnostics (strategy used, candidates scanned, whether k was satisfied) so
the learned router in :mod:`repro.core.hybrid` has training signal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import CollectionError
from repro.vectordb.distance import Metric
from repro.vectordb.filters import MetadataFilter
from repro.vectordb.index_flat import FlatIndex
from repro.vectordb.index_hnsw import HNSWIndex
from repro.vectordb.index_ivf import IVFIndex

IndexType = Union[FlatIndex, IVFIndex, HNSWIndex]


class FilterStrategy(enum.Enum):
    PRE = "pre"
    POST = "post"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class SearchHit:
    """One result: id, similarity score, metadata and payload."""

    id: str
    score: float
    metadata: Mapping[str, object]
    payload: object = None


@dataclass
class SearchReport:
    """Hits plus execution diagnostics for one hybrid search."""

    hits: List[SearchHit]
    strategy: FilterStrategy
    candidates_scanned: int
    requested_k: int
    satisfied: bool
    estimated_selectivity: float = 1.0

    def __iter__(self):
        return iter(self.hits)

    def __len__(self) -> int:
        return len(self.hits)


def _build_index(index: str, dim: int, metric: Metric, **kwargs: object) -> IndexType:
    if index == "flat":
        return FlatIndex(dim=dim, metric=metric)
    if index == "ivf":
        return IVFIndex(dim=dim, metric=metric, **kwargs)  # type: ignore[arg-type]
    if index == "hnsw":
        return HNSWIndex(dim=dim, metric=metric, **kwargs)  # type: ignore[arg-type]
    raise ValueError(f"unknown index type {index!r} (expected flat/ivf/hnsw)")


class Collection:
    """A named set of vectors with attached metadata and payloads."""

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.COSINE,
        index: str = "flat",
        overfetch: float = 4.0,
        **index_kwargs: object,
    ) -> None:
        self.dim = dim
        self.metric = metric
        self.index_type = index
        self.overfetch = overfetch
        self._index = _build_index(index, dim, metric, **index_kwargs)
        self._metadata: Dict[str, Dict[str, object]] = {}
        self._payloads: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._index

    # -- mutation ---------------------------------------------------------

    def add(
        self,
        item_id: str,
        vector: np.ndarray,
        metadata: Optional[Mapping[str, object]] = None,
        payload: object = None,
    ) -> None:
        """Index one item with optional metadata and payload."""
        self._index.add(item_id, vector)
        self._metadata[item_id] = dict(metadata or {})
        self._payloads[item_id] = payload

    def remove(self, item_id: str) -> None:
        """Delete an item (vector, metadata and payload)."""
        self._index.remove(item_id)
        self._metadata.pop(item_id, None)
        self._payloads.pop(item_id, None)

    def get_vector(self, item_id: str) -> np.ndarray:
        return self._index.get(item_id)

    def get_metadata(self, item_id: str) -> Dict[str, object]:
        """Copy of an item's metadata; raises on unknown ids."""
        if item_id not in self._metadata:
            raise CollectionError(f"unknown item id: {item_id!r}")
        return dict(self._metadata[item_id])

    def get_payload(self, item_id: str) -> object:
        """The item's payload; raises on unknown ids."""
        if item_id not in self._payloads:
            raise CollectionError(f"unknown item id: {item_id!r}")
        return self._payloads[item_id]

    def ids(self) -> List[str]:
        return [vid for vid, _vec in self._index.items()]

    # -- search -------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        where: Optional[Mapping[str, object]] = None,
        strategy: FilterStrategy = FilterStrategy.ADAPTIVE,
    ) -> SearchReport:
        """Hybrid top-k search; see module docstring for strategy semantics."""
        metadata_filter = MetadataFilter(where)
        if not metadata_filter:
            raw = self._index.search(query, k)
            hits = self._to_hits(raw)
            return SearchReport(
                hits=hits,
                strategy=strategy,
                candidates_scanned=len(self._index),
                requested_k=k,
                satisfied=len(hits) >= min(k, len(self._index)),
            )

        selectivity = metadata_filter.selectivity(list(self._metadata.values()))
        if strategy is FilterStrategy.ADAPTIVE:
            chosen = FilterStrategy.PRE if selectivity <= 0.25 else FilterStrategy.POST
        else:
            chosen = strategy

        if chosen is FilterStrategy.PRE:
            allowed = [vid for vid, meta in self._metadata.items() if metadata_filter.matches(meta)]
            raw = self._index.search(query, k, allowed_ids=allowed)
            hits = self._to_hits(raw)
            return SearchReport(
                hits=hits,
                strategy=FilterStrategy.PRE,
                candidates_scanned=len(allowed),
                requested_k=k,
                satisfied=len(hits) >= min(k, len(allowed)),
                estimated_selectivity=selectivity,
            )

        # POST: over-fetch, widened by estimated pass rate when adaptive.
        widen = self.overfetch
        if strategy is FilterStrategy.ADAPTIVE and selectivity > 0:
            widen = max(widen, 1.5 / selectivity)
        k_prime = min(len(self._index), max(k, int(np.ceil(k * widen))))
        raw = self._index.search(query, k_prime)
        filtered = [
            (vid, score) for vid, score in raw if metadata_filter.matches(self._metadata.get(vid))
        ]
        hits = self._to_hits(filtered[:k])
        total_matching = sum(
            1 for meta in self._metadata.values() if metadata_filter.matches(meta)
        )
        return SearchReport(
            hits=hits,
            strategy=FilterStrategy.POST,
            candidates_scanned=k_prime,
            requested_k=k,
            satisfied=len(hits) >= min(k, total_matching),
            estimated_selectivity=selectivity,
        )

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Serializable snapshot: config + items. Payloads must be
        JSON-serializable (or None) to round-trip through :meth:`save`."""
        items = []
        for item_id, vector in self._index.items():
            items.append(
                {
                    "id": item_id,
                    "vector": [float(v) for v in vector],
                    "metadata": self._metadata.get(item_id, {}),
                    "payload": self._payloads.get(item_id),
                }
            )
        return {
            "dim": self.dim,
            "metric": self.metric.value,
            "index": self.index_type,
            "overfetch": self.overfetch,
            "items": items,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Collection":
        """Rebuild a collection from a :meth:`to_dict` snapshot."""
        collection = cls(
            dim=int(data["dim"]),
            metric=Metric(data["metric"]),
            index=str(data["index"]),
            overfetch=float(data.get("overfetch", 4.0)),
        )
        for item in data["items"]:  # type: ignore[union-attr]
            collection.add(
                item["id"],
                np.asarray(item["vector"], dtype=np.float64),
                metadata=item.get("metadata") or {},
                payload=item.get("payload"),
            )
        return collection

    def save(self, path: str) -> None:
        """Write the collection to a JSON file, atomically.

        The payload lands in a temp file that is renamed over ``path``
        (see :mod:`repro.durability.atomic`), so a crash mid-write can
        never leave a torn half-JSON file — readers see the previous
        complete save or the new one, nothing in between.
        """
        # Function-level import: the durability package imports the cache
        # layer, which imports this package — importing it at module level
        # would be cyclic at package-init time.
        from repro.durability.atomic import atomic_write_json

        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "Collection":
        """Read a collection previously written by :meth:`save`."""
        import json

        with open(path, "r", encoding="utf-8") as f:
            return cls.from_dict(json.load(f))

    def _to_hits(self, raw: Sequence) -> List[SearchHit]:
        return [
            SearchHit(
                id=vid,
                score=score,
                metadata=dict(self._metadata.get(vid, {})),
                payload=self._payloads.get(vid),
            )
            for vid, score in raw
        ]
