"""Partition-aware index construction for sharded corpora.

A sharded semantic cache splits one logical corpus across N shard-local
partitions (router key = tenant + prompt hash), so the right index *kind*
is a per-partition decision, not a corpus-level one: a 400k-entry corpus
split 8 ways is eight 50k partitions, each best served by a plain
:class:`~repro.vectordb.FlatIndex` gemv — while the same corpus unsharded
wants the cluster-pruned :class:`~repro.vectordb.ExactIVFIndex`. This is
exactly the "IVF partitions map onto shards" observation: the shard hash
*is* the coarse quantizer, so per-partition indexes start one level
shallower than a monolithic one.

:class:`PartitionSpec` captures the split (how many partitions a corpus of
``total_capacity`` expected rows is divided into) and builds each
partition's index via :func:`~repro.vectordb.tuning.auto_index` at the
*partition-local* expected size. A spec is a pure value object: two specs
with equal fields build identical index stacks, which keeps resharded
clusters reconstructible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.vectordb.distance import Metric
from repro.vectordb.index_flat import FlatIndex
from repro.vectordb.tuning import auto_index


@dataclass(frozen=True)
class PartitionSpec:
    """How one logical vector corpus is split across shard partitions."""

    dim: int
    total_capacity: int
    n_partitions: int = 1
    metric: Metric = Metric.COSINE

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError("dim must be positive")
        if self.total_capacity <= 0:
            raise ValueError("total_capacity must be positive")
        if self.n_partitions <= 0:
            raise ValueError("n_partitions must be positive")

    @property
    def partition_capacity(self) -> int:
        """Expected rows per partition under a balanced hash (ceil)."""
        return -(-self.total_capacity // self.n_partitions)

    def build_partition_index(self) -> FlatIndex:
        """One shard-local index sized to the partition-local load."""
        return auto_index(self.dim, self.partition_capacity, metric=self.metric)

    def build(self) -> List[FlatIndex]:
        """All ``n_partitions`` indexes (independent instances)."""
        return [self.build_partition_index() for _ in range(self.n_partitions)]

    def resharded(self, n_partitions: int) -> "PartitionSpec":
        """The same corpus split across a different shard count."""
        return PartitionSpec(
            dim=self.dim,
            total_capacity=self.total_capacity,
            n_partitions=n_partitions,
            metric=self.metric,
        )

    def describe(self) -> str:
        kind = type(self.build_partition_index()).__name__
        return (
            f"{self.n_partitions} x {kind}(dim={self.dim}, "
            f"~{self.partition_capacity} rows/partition)"
        )


__all__ = ["PartitionSpec"]
