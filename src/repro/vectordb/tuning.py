"""ANN knob auto-tuning (Section III-B2, refs [72, 73]).

"Recent works, which propose to tune the knobs used in approximate nearest
neighbor algorithms through learning-based methods, are a good starting
point." This module provides that starting point: given a validation query
sample and a recall target, it finds the smallest IVF ``nprobe`` /
HNSW ``ef_search`` that achieves the target — smallest, because the knob is
a pure recall/work trade-off and work scales with the knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.vectordb.distance import Metric
from repro.vectordb.index_flat import FlatIndex
from repro.vectordb.index_hnsw import HNSWIndex
from repro.vectordb.index_ivf import IVFIndex
from repro.vectordb.index_ivf_exact import ExactIVFIndex

# Above this many expected entries, a brute-force scan per probe stops
# being the right default: auto_index switches to cluster-pruned exact
# search. Chosen where the flat gemv starts to dominate probe latency on
# commodity hardware (~50k rows at dim 64).
FLAT_MAX_ENTRIES = 50_000


def auto_index(
    dim: int,
    expected_size: int,
    metric: Metric = Metric.COSINE,
) -> FlatIndex:
    """Pick the right index for an expected corpus size.

    Up to :data:`FLAT_MAX_ENTRIES` rows (or for non-cosine metrics, where
    the angular pruning bound doesn't apply) this returns a plain
    :class:`FlatIndex` — exact, simple, and fastest at small scale. Above
    it, an :class:`ExactIVFIndex`: identical results (its cluster pruning
    is a proof, not a recall trade-off) with sublinear expected scanning
    on clustered data. Callers that can tolerate approximate recall at
    even larger scales should reach for :class:`IVFIndex`/
    :class:`HNSWIndex` explicitly and tune them with
    :func:`tune_nprobe`/:func:`tune_ef_search`."""
    if expected_size <= FLAT_MAX_ENTRIES or metric is not Metric.COSINE:
        return FlatIndex(dim=dim, metric=metric)
    return ExactIVFIndex(dim=dim, metric=metric)


@dataclass(frozen=True)
class TuningResult:
    """Chosen knob value and the recall measured at it."""

    knob: str
    value: int
    recall: float
    target: float
    evaluations: int  # knob settings tried

    @property
    def met_target(self) -> bool:
        return self.recall >= self.target


def measure_recall(
    index, reference: FlatIndex, queries: Sequence[np.ndarray], k: int = 10
) -> float:
    """Mean recall@k of ``index`` against the exact flat reference."""
    if not queries:
        raise ValueError("need at least one validation query")
    total = 0.0
    for query in queries:
        truth = {hit_id for hit_id, _s in reference.search(query, k)}
        got = {hit_id for hit_id, _s in index.search(query, k)}
        total += len(truth & got) / max(len(truth), 1)
    return total / len(queries)


def _binary_search_knob(
    set_knob, measure, lo: int, hi: int, target: float
) -> tuple:
    """Smallest knob in [lo, hi] whose recall >= target (monotone search).

    Returns (value, recall at value, evaluations). Falls back to ``hi``
    when even the maximum cannot reach the target."""
    evaluations = 0
    best_value: Optional[int] = None
    best_recall = 0.0
    while lo <= hi:
        mid = (lo + hi) // 2
        set_knob(mid)
        recall = measure()
        evaluations += 1
        if recall >= target:
            best_value, best_recall = mid, recall
            hi = mid - 1
        else:
            lo = mid + 1
    if best_value is None:
        # Target unreachable: report the strongest setting measured.
        return hi + 1 if hi >= 0 else 1, best_recall, evaluations
    return best_value, best_recall, evaluations


def tune_nprobe(
    index: IVFIndex,
    reference: FlatIndex,
    queries: Sequence[np.ndarray],
    target_recall: float = 0.95,
    k: int = 10,
) -> TuningResult:
    """Find the smallest ``nprobe`` meeting the recall target."""
    if not index.is_trained:
        index.train()
    original = index.nprobe

    def set_knob(value: int) -> None:
        index.nprobe = value

    value, recall, evaluations = _binary_search_knob(
        set_knob,
        lambda: measure_recall(index, reference, queries, k=k),
        lo=1,
        hi=index.nlist,
        target=target_recall,
    )
    index.nprobe = min(max(value, 1), index.nlist)
    # Re-measure at the final setting (the binary search may have fallen
    # back to the maximum without measuring it).
    final_recall = measure_recall(index, reference, queries, k=k)
    if final_recall < recall:
        final_recall = recall
    del original
    return TuningResult(
        knob="nprobe",
        value=index.nprobe,
        recall=final_recall,
        target=target_recall,
        evaluations=evaluations,
    )


def tune_ef_search(
    index: HNSWIndex,
    reference: FlatIndex,
    queries: Sequence[np.ndarray],
    target_recall: float = 0.95,
    k: int = 10,
    max_ef: int = 256,
) -> TuningResult:
    """Find the smallest ``ef_search`` meeting the recall target."""

    def set_knob(value: int) -> None:
        index.ef_search = value

    value, recall, evaluations = _binary_search_knob(
        set_knob,
        lambda: measure_recall(index, reference, queries, k=k),
        lo=max(k, 1),
        hi=max_ef,
        target=target_recall,
    )
    index.ef_search = min(max(value, k), max_ef)
    final_recall = measure_recall(index, reference, queries, k=k)
    if final_recall < recall:
        final_recall = recall
    return TuningResult(
        knob="ef_search",
        value=index.ef_search,
        recall=final_recall,
        target=target_recall,
        evaluations=evaluations,
    )
