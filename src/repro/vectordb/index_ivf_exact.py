"""Exact top-1 search with IVF-style cluster pruning.

:class:`ExactIVFIndex` keeps the full :class:`~repro.vectordb.FlatIndex`
contract — every search result is *exact*, bit-identical to the brute-force
scan — but organizes rows into k-means clusters and uses the triangle
inequality on the unit sphere to skip clusters that provably cannot contain
the winner:

    angle(q, x) >= angle(q, c) - radius(c)      for any member x of c

so ``sim(q, x) <= cos(max(0, theta_qc - r_c))`` under cosine similarity.
Clusters are scanned in decreasing order of that upper bound and the scan
stops once the bound falls below the best similarity found so far (minus
the band-refinement margin plus a float-safety slack), which guarantees the
scalar-exact winner — including the first-inserted tie-break — was scanned.

This is how the cache keeps brute-force semantics at 100k–1M entries: the
classic IVF recall/latency trade-off is replaced by a latency-only trade
(pruning helps exactly as much as the data is clustered, and degrades to a
full scan — never to a wrong answer — on adversarial data).

Training is lazy and amortized: k-means runs on a bounded sample the first
time the index is searched above ``train_threshold`` rows, and re-runs only
when the untrained tail outgrows ``retrain_fraction`` of the data. Rows
added since the last training round form a contiguous tail block that is
always scanned (one extra block gemv), so inserts stay write-behind cheap.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.vectordb.distance import Metric, scalar_similarity
from repro.vectordb.index_flat import REFINE_BAND, FlatIndex

# Absorbs arccos/cos rounding in the cluster bounds: near theta=0 an
# ~1e-13 error in a cosine maps to ~6e-7 radians, so bounds are compared
# with this much extra headroom before a cluster is pruned.
BOUND_SLACK = 1e-5

DEFAULT_TRAIN_THRESHOLD = 4096
DEFAULT_TRAIN_SAMPLE = 20_000
DEFAULT_RETRAIN_FRACTION = 0.25
_ASSIGN_CHUNK = 8192


def _spherical_kmeans(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator, iterations: int = 8
) -> np.ndarray:
    """K-means on the unit sphere (assign by max cosine); returns unit
    centroids. Memory-bounded: distances are computed in row chunks, never
    as an (n, k, dim) broadcast."""
    n = data.shape[0]
    n_clusters = min(n_clusters, n)
    norms = np.linalg.norm(data, axis=1, keepdims=True)
    unit = np.divide(data, norms, out=np.zeros_like(data), where=norms > 0)
    centroids = unit[rng.choice(n, size=n_clusters, replace=False)].copy()
    for _round in range(iterations):
        assign = _chunked_argmax(unit, centroids)
        new_centroids = centroids.copy()
        for c in range(n_clusters):
            members = unit[assign == c]
            if len(members):
                mean = members.mean(axis=0)
                norm = np.linalg.norm(mean)
                new_centroids[c] = mean / norm if norm > 0 else unit[rng.integers(0, n)]
            else:
                new_centroids[c] = unit[rng.integers(0, n)]
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    return centroids


def _chunked_argmax(unit_rows: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment by cosine, chunked over rows."""
    n = unit_rows.shape[0]
    out = np.empty(n, dtype=np.int64)
    for start in range(0, n, _ASSIGN_CHUNK):
        chunk = unit_rows[start : start + _ASSIGN_CHUNK]
        out[start : start + _ASSIGN_CHUNK] = (chunk @ centroids.T).argmax(axis=1)
    return out


class ExactIVFIndex(FlatIndex):
    """A :class:`FlatIndex` whose top-1 searches prune whole clusters.

    Every public result is identical to :class:`FlatIndex` (the pruning
    bound is a proof, not a heuristic); only the amount of work differs.
    Metrics other than cosine, and states where clustering hasn't trained
    yet, fall back to the inherited full scan.
    """

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.COSINE,
        seed: int = 7,
        train_threshold: int = DEFAULT_TRAIN_THRESHOLD,
        train_sample: int = DEFAULT_TRAIN_SAMPLE,
        retrain_fraction: float = DEFAULT_RETRAIN_FRACTION,
    ) -> None:
        super().__init__(dim, metric)
        self.train_threshold = max(2, train_threshold)
        self.train_sample = max(256, train_sample)
        self.retrain_fraction = retrain_fraction
        self._rng = np.random.default_rng(seed)
        self._centroids: Optional[np.ndarray] = None  # (k, dim) unit rows
        self._radius: Optional[np.ndarray] = None  # (k,) max member angle
        self._cluster_rows: List[np.ndarray] = []  # row indices per cluster
        self._trained_rows = 0  # rows >= this form the always-scanned tail
        # Observability: how much scanning the bounds actually saved.
        self.last_scanned_rows = 0
        self.pruned_searches = 0
        self.full_searches = 0

    # ------------------------------------------------------------- training

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def _invalidate_clustering(self) -> None:
        self._centroids = None
        self._radius = None
        self._cluster_rows = []
        self._trained_rows = 0

    def _compact(self) -> None:
        # Compaction renumbers rows; drop the clustering and let the next
        # search retrain over the compacted buffer.
        super()._compact()
        self._invalidate_clustering()

    def _maybe_train(self) -> None:
        size = self._size
        if size < self.train_threshold:
            return
        tail = size - self._trained_rows
        if self._centroids is not None and tail <= self.retrain_fraction * size:
            return
        self.train()

    def train(self) -> None:
        """(Re)cluster the current rows. Bounded work: k-means runs on at
        most ``train_sample`` sampled rows; the full assignment + radius
        pass is chunked matrix products."""
        self._flush_pending()
        size = self._size
        if size == 0:
            self._invalidate_clustering()
            return
        matrix = self._buf[:size]
        n_clusters = int(np.clip(np.sqrt(size), 8, 1024))
        if size > self.train_sample:
            sample_rows = self._rng.choice(size, size=self.train_sample, replace=False)
            sample = matrix[np.sort(sample_rows)]
        else:
            sample = matrix
        centroids = _spherical_kmeans(sample, n_clusters, self._rng)
        n_clusters = centroids.shape[0]

        # Assign every row and accumulate each cluster's angular radius.
        norms = self._norms_buf[:size]
        assign = np.empty(size, dtype=np.int64)
        min_cos = np.ones(n_clusters, dtype=np.float64)
        zero_rows = norms == 0
        for start in range(0, size, _ASSIGN_CHUNK):
            stop = min(start + _ASSIGN_CHUNK, size)
            chunk = matrix[start:stop]
            chunk_norms = norms[start:stop]
            cosines = chunk @ centroids.T
            np.divide(
                cosines,
                chunk_norms[:, None],
                out=cosines,
                where=chunk_norms[:, None] > 0,
            )
            chunk_assign = cosines.argmax(axis=1)
            assign[start:stop] = chunk_assign
            member_cos = cosines[np.arange(stop - start), chunk_assign]
            np.minimum.at(min_cos, chunk_assign, member_cos)
        radius = np.arccos(np.clip(min_cos, -1.0, 1.0))
        if zero_rows.any():
            # Zero vectors have no direction: make their clusters unprunable.
            radius[np.unique(assign[zero_rows])] = np.pi

        order = np.argsort(assign, kind="stable")
        boundaries = np.searchsorted(assign[order], np.arange(n_clusters + 1))
        self._cluster_rows = [
            order[boundaries[c] : boundaries[c + 1]] for c in range(n_clusters)
        ]
        self._centroids = centroids
        self._radius = radius
        self._trained_rows = size

    # -------------------------------------------------------------- search

    def _chunk_sims(self, rows: np.ndarray, query: np.ndarray, qn: float) -> np.ndarray:
        """Cosine sims of ``query`` against the given rows (dead -> -inf)."""
        dots = self._buf[rows] @ query
        denom = self._norms_buf[rows] * qn
        sims = np.divide(dots, denom, out=np.zeros_like(dots), where=denom > 0)
        if self._tombstones:
            sims = np.where(self._live_buf[rows], sims, -np.inf)
        return sims

    def _pruned_top1(
        self, query: np.ndarray, refine_exact: bool
    ) -> Tuple[str, float]:
        assert self._centroids is not None and self._radius is not None
        qn = float(np.linalg.norm(query))
        qhat = query / qn
        theta = np.arccos(np.clip(self._centroids @ qhat, -1.0, 1.0))
        bounds = np.cos(np.maximum(0.0, theta - self._radius))
        order = np.argsort(-bounds, kind="stable")

        scanned_rows: List[np.ndarray] = []
        scanned_sims: List[np.ndarray] = []
        best = -np.inf
        # The untrained tail has no bound: scan it first (one block gemv).
        if self._trained_rows < self._size:
            tail = np.arange(self._trained_rows, self._size)
            sims = self._chunk_sims(tail, query, qn)
            scanned_rows.append(tail)
            scanned_sims.append(sims)
            if sims.size:
                best = max(best, float(sims.max()))
        stop_margin = REFINE_BAND + BOUND_SLACK
        for c in order:
            if bounds[c] < best - stop_margin:
                break  # no remaining cluster can hold the winner or its band
            rows = self._cluster_rows[c]
            if rows.size == 0:
                continue
            sims = self._chunk_sims(rows, query, qn)
            scanned_rows.append(rows)
            scanned_sims.append(sims)
            top = float(sims.max())
            if top > best:
                best = top
        rows = np.concatenate(scanned_rows)
        sims = np.concatenate(scanned_sims)
        self.last_scanned_rows = int(rows.size)
        if not refine_exact:
            top_rows = rows[sims == best]
            winner = int(top_rows.min())  # first-inserted among blas ties
            return self._ids[winner], best
        band_rows = rows[sims >= best - REFINE_BAND]
        # Ascending row order == insertion order: the strict-> refinement
        # keeps the first-inserted winner, exactly like the full scan.
        band_rows = np.sort(band_rows)
        best_sim = -np.inf
        winner = int(band_rows[0])
        for row in band_rows:
            sim = scalar_similarity(query, self._buf[row], self.metric)
            if sim > best_sim:
                best_sim, winner = sim, int(row)
        return self._ids[winner], float(best_sim)

    def search_top1(
        self, query: np.ndarray, refine_exact: bool = False
    ) -> Optional[Tuple[str, float]]:
        self._flush_pending()
        if not self._live:
            return None
        query = self._check(query)
        self._maybe_train()
        if (
            self._centroids is None
            or self.metric is not Metric.COSINE
            or float(np.linalg.norm(query)) == 0.0
        ):
            self.full_searches += 1
            return super().search_top1(query, refine_exact)
        self.pruned_searches += 1
        return self._pruned_top1(query, refine_exact)

    def search_top1_many(
        self, queries: np.ndarray, refine_exact: bool = False
    ) -> List[Optional[Tuple[str, float]]]:
        self._flush_pending()
        queries = np.asarray(queries, dtype=np.float64)
        if not self._live:
            return [None] * queries.shape[0]
        self._maybe_train()
        if self._centroids is None or self.metric is not Metric.COSINE:
            return super().search_top1_many(queries, refine_exact)
        return [self.search_top1(q, refine_exact) for q in queries]
